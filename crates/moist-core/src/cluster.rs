//! Periodic lazy clustering (§3.3.2).
//!
//! Clustering runs cell by cell over *clustering cells* — cells several
//! levels coarser than the spatial leaf level, so each one is a contiguous
//! row range batch-read from the Spatial Index Table. Within a cell:
//!
//! 1. **read** — batch-scan the cell's leaders and batch-get their Follower
//!    Info from the Affiliation Table;
//! 2. **compute** — map each leader's velocity to a hexagonal bin (`O(1)`
//!    each, `O(n)` total) and merge the leaders sharing a bin;
//! 3. **write** — commit each merged leader by atomically deleting its
//!    Spatial Index row *guarded on the scanned value* (the store's
//!    check-and-mutate), then apply the affiliation rewrites as batched
//!    mutations: transfer Follower Info, rewrite L/F entries of moved
//!    followers. A leader whose row changed since the scan (it updated or
//!    moved concurrently on another shard) fails the guard and its merge
//!    is aborted for this round — clustering never demotes a live leader
//!    out from under a racing cross-cell move.
//!
//! The per-phase virtual latencies are reported so Figure 10's
//! read/compute/write breakdown can be regenerated.

use crate::codec::LfRecord;
use crate::config::MoistConfig;
use crate::error::Result;
use crate::hexgrid::{HexBin, HexGrid};
use crate::ids::ObjectId;
use crate::tables::{MoistTables, SpatialEntry};
use moist_bigtable::{RowMutation, Session, Timestamp};
use moist_spatial::{cells_at_level, CellId};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Outcome and phase timing of clustering one cell.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Leaders present before clustering.
    pub pre_leaders: usize,
    /// Leaders remaining after clustering.
    pub post_leaders: usize,
    /// Leaders merged into other schools.
    pub merged: usize,
    /// Merges aborted because the leader's spatial row changed between
    /// the clustering scan and the guarded commit (a racing update won).
    pub merge_aborts: usize,
    /// Followers whose affiliation was rewritten.
    pub followers_moved: usize,
    /// Virtual µs spent reading (Spatial Index + Affiliation batch reads).
    pub read_us: f64,
    /// Virtual µs spent on the in-server computation.
    pub compute_us: f64,
    /// Virtual µs spent writing the merge batches.
    pub write_us: f64,
}

impl ClusterReport {
    /// Total virtual latency of this clustering.
    pub fn total_us(&self) -> f64 {
        self.read_us + self.compute_us + self.write_us
    }

    /// Accumulates another report (for whole-map sweeps).
    pub fn merge_from(&mut self, other: &ClusterReport) {
        self.pre_leaders += other.pre_leaders;
        self.post_leaders += other.post_leaders;
        self.merged += other.merged;
        self.merge_aborts += other.merge_aborts;
        self.followers_moved += other.followers_moved;
        self.read_us += other.read_us;
        self.compute_us += other.compute_us;
        self.write_us += other.write_us;
    }
}

/// Clusters one clustering cell: merges leaders with similar velocities.
///
/// `now` stamps the rewritten records. Geographic proximity is inherent:
/// only leaders inside the same clustering cell are candidates (§3.3.2).
pub fn cluster_cell(
    s: &mut Session,
    tables: &MoistTables,
    cfg: &MoistConfig,
    cell: CellId,
    now: Timestamp,
) -> Result<ClusterReport> {
    let mut report = ClusterReport::default();

    // ---- read phase ----
    let t0 = s.elapsed_us();
    let leaders: Vec<SpatialEntry> =
        tables.spatial_scan_cell(s, cell, cfg.space.leaf_level, None)?;
    report.pre_leaders = leaders.len();
    if leaders.len() < 2 {
        report.post_leaders = leaders.len();
        report.read_us = s.elapsed_us() - t0;
        return Ok(report);
    }
    let leader_ids: Vec<ObjectId> = leaders.iter().map(|e| e.oid).collect();
    let follower_infos = tables.batch_followers(s, &leader_ids)?;
    report.read_us = s.elapsed_us() - t0;

    // ---- compute phase (wall-measured, charged to the virtual clock) ----
    let wall0 = std::time::Instant::now();
    let grid = HexGrid::new(cfg.delta_m);
    let mut bins: HashMap<HexBin, Vec<usize>> = HashMap::new();
    for (i, entry) in leaders.iter().enumerate() {
        bins.entry(grid.bin(&entry.record.vel)).or_default().push(i);
    }
    // Within each bin, the leader with the most followers survives — it is
    // the cheapest merge (fewest L/F rewrites).
    struct Merge {
        survivor: usize,
        absorbed: Vec<usize>,
    }
    let merges: Vec<Merge> = bins
        .into_values()
        .filter(|members| members.len() > 1)
        .map(|mut members| {
            members
                .sort_by_key(|&i| (std::cmp::Reverse(follower_infos[i].len()), leaders[i].oid.0));
            let survivor = members[0];
            Merge {
                survivor,
                absorbed: members[1..].to_vec(),
            }
        })
        .collect();
    let compute_wall_us = wall0.elapsed().as_secs_f64() * 1e6;
    s.charge_extra_us(compute_wall_us);
    report.compute_us = compute_wall_us;

    // ---- write phase ----
    //
    // Each absorbed leader commits through per-row guards rather than one
    // blind batch, because a cross-cell move is applied by the
    // *destination* cell's owner — a different shard, outside this cell's
    // serialization:
    //
    // * the **commit point** is a check-and-mutate delete of j's spatial
    //   row (fails ⇒ j moved since the scan ⇒ j's merge aborts whole);
    //   the update path's cross-cell move deletes through the same guard
    //   ([`MoistTables::spatial_move_guarded`]), so exactly one side wins
    //   and an absorbed leader can never be resurrected;
    // * each **follower re-affiliation** is a check-and-mutate on the
    //   follower's L/F record (fails ⇒ the follower promoted since the
    //   scan ⇒ it keeps its self-chosen affiliation and the school add is
    //   compensated).
    let t1 = s.elapsed_us();
    let mut merged_count = 0usize;
    let mut followers_moved = 0usize;
    let mut aborted = 0usize;
    // Leaders' stored records carry different timestamps (each wrote at its
    // own last update); advance both to `now` under linear motion before
    // differencing, or displacements absorb up to v·Δt of skew.
    let pos_now = |e: &SpatialEntry| e.record.loc.advance(e.record.vel, now.secs_since(e.ts));
    for m in &merges {
        let survivor = &leaders[m.survivor];
        for &j in &m.absorbed {
            let absorbed = &leaders[j];
            // (iii, hoisted) the commit point: atomically delete j from
            // the Spatial Index Table iff its row still holds the scanned
            // record. From here until j's L/F record flips below, j's own
            // updates back off (their guarded move finds no row), so j's
            // affiliation cannot change under us.
            if !tables.spatial_check_and_delete(s, absorbed)? {
                aborted += 1;
                continue;
            }
            // Displacement from the survivor to the absorbed leader at `now`.
            let lead_disp = pos_now(survivor).displacement_to(&pos_now(absorbed));
            // (ii) every follower of j re-affiliates to the survivor; its
            // displacement composes: survivor → j → follower. Re-read the
            // follower's record (not the scanned copy): one that departed
            // since the scan is no longer ours to move.
            for &(f, _) in &follower_infos[j] {
                let (d, expected) = match tables.lf(s, f)? {
                    Some(LfRecord::Follower {
                        leader,
                        displacement,
                        since_us,
                    }) if leader == absorbed.oid => (
                        displacement,
                        LfRecord::Follower {
                            leader,
                            displacement,
                            since_us,
                        },
                    ),
                    _ => continue, // departed (or re-led) since the scan
                };
                let nd = moist_spatial::Displacement::new(lead_disp.dx + d.dx, lead_disp.dy + d.dy);
                // School row before pointer: once the guarded flip lands,
                // f's very next update can depart and must find itself in
                // the survivor's Follower Info to remove.
                tables.add_follower(s, survivor.oid, f, nd, now)?;
                let flipped = tables.lf_check_and_set(
                    s,
                    f,
                    &expected,
                    &LfRecord::Follower {
                        leader: survivor.oid,
                        displacement: nd,
                        since_us: now.0,
                    },
                    now,
                )?;
                if flipped {
                    followers_moved += 1;
                } else {
                    // f promoted between the re-read and the guard: it
                    // never saw the survivor, so un-add it.
                    tables.remove_follower(s, survivor.oid, f)?;
                }
            }
            // (i) j's Follower Info is cleared and j itself becomes a
            // follower of the survivor (school row first, pointer last —
            // j's updates are backed off, see the commit point above).
            // The pointer flip goes through `set_lf` so it lands at a
            // superseding timestamp: this ticker's clock may trail j's
            // own report clock, and a flip stamped behind j's Leader
            // record would be shadowed — j would read itself a leader
            // forever while sitting in the survivor's school.
            tables.affiliation_batch(
                s,
                &coalesce_rows(vec![
                    MoistTables::clear_followers_mutation(absorbed.oid),
                    MoistTables::add_follower_mutation(survivor.oid, absorbed.oid, lead_disp, now),
                ]),
            )?;
            tables.set_lf(
                s,
                absorbed.oid,
                &LfRecord::Follower {
                    leader: survivor.oid,
                    displacement: lead_disp,
                    since_us: now.0,
                },
                now,
            )?;
            merged_count += 1;
        }
    }
    report.write_us = s.elapsed_us() - t1;
    report.merge_aborts = aborted;
    report.merged = merged_count;
    report.followers_moved = followers_moved;
    report.post_leaders = report.pre_leaders - merged_count;
    Ok(report)
}

/// Merges the mutations targeting the same row into one [`RowMutation`]
/// (preserving per-row mutation order), the way a batching client library
/// groups its commit: row-level atomicity is unchanged, the batch just
/// carries fewer row headers.
fn coalesce_rows(batch: Vec<RowMutation>) -> Vec<RowMutation> {
    let mut order: Vec<moist_bigtable::RowKey> = Vec::new();
    let mut by_row: HashMap<moist_bigtable::RowKey, Vec<moist_bigtable::Mutation>> = HashMap::new();
    for rm in batch {
        match by_row.entry(rm.key.clone()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().extend(rm.mutations);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                order.push(rm.key.clone());
                e.insert(rm.mutations);
            }
        }
    }
    order
        .into_iter()
        .map(|key| {
            let mutations = by_row.remove(&key).expect("tracked key");
            RowMutation { key, mutations }
        })
        .collect()
}

/// Clusters every clustering cell of the map once, sequentially ("at any
/// given time only a small number of clustering cells are being processed",
/// §3.3.2). Returns the aggregated report.
pub fn cluster_sweep(
    s: &mut Session,
    tables: &MoistTables,
    cfg: &MoistConfig,
    now: Timestamp,
) -> Result<ClusterReport> {
    let mut total = ClusterReport::default();
    for index in 0..cells_at_level(cfg.clustering_level) {
        let cell = CellId {
            level: cfg.clustering_level,
            index,
        };
        let r = cluster_cell(s, tables, cfg, cell, now)?;
        total.merge_from(&r);
    }
    Ok(total)
}

/// Rendezvous weight of `(key, member)`: a splitmix64-style finalizer over
/// the pair, so each member's weight stream is decorrelated both across
/// keys (curve-adjacent hot cells spread out) and across members.
fn rendezvous_weight(key: u64, member: u64) -> u64 {
    let mut z = key
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(member.wrapping_mul(0xD1B5_4A32_D192_ED03))
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Rendezvous (highest-random-weight) owner of `key` among `members`
/// (stable shard ids): the member whose hashed weight for this key is
/// largest wins, ties broken towards the smaller id.
///
/// Unlike a modular hash over the member *count*, membership changes
/// remap the minimum: adding a member steals only the keys it now wins
/// (~`1/(N+1)` of them) and removing a member reassigns only the keys it
/// owned — every other key's winner is untouched, because the surviving
/// members' weights do not change. The result is also independent of the
/// order of `members`.
///
/// Panics if `members` is empty (an empty cluster owns nothing).
pub fn rendezvous_owner(key: u64, members: &[u64]) -> u64 {
    rendezvous_max(key, members.iter().copied(), |&m| m).expect("rendezvous over empty membership")
}

/// One member of a weighted membership: a stable shard id plus its
/// placement weight (relative capacity — the load-signal layer derives it
/// from measured utilization; see
/// [`crate::cluster_tier::MoistCluster::rebalance`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardWeight {
    /// Stable shard id.
    pub id: u64,
    /// Relative capacity; non-finite or non-positive weights are clamped
    /// to a small floor so a misconfigured shard still owns *something*
    /// (total loss of ownership would orphan its in-flight state).
    pub weight: f64,
}

impl ShardWeight {
    /// A unit-weight member (the unweighted-rendezvous behaviour).
    pub fn unit(id: u64) -> Self {
        ShardWeight { id, weight: 1.0 }
    }
}

/// Weighted rendezvous owner of `key`: log-weight (highest-random-weight
/// with weights) selection, `score(m) = w_m / (−ln u_m)` where `u_m ∈
/// (0,1)` is the member's hashed draw for this key. The member with the
/// largest score wins.
///
/// Properties (property-tested in `moist-core/tests/rendezvous_props.rs`):
///
/// * **proportional share** — each member owns a fraction of the key
///   space proportional to `w_m / Σw` (within hash noise);
/// * **minimal remap under weight change** — raising one member's weight
///   only moves keys *to* it, lowering it only moves keys *away* from it
///   (the other members' scores are untouched);
/// * **equal weights ⇒ plain rendezvous** — with all weights equal the
///   winner is exactly [`rendezvous_owner`]'s (the score is monotone in
///   the hashed draw, and ties fall back to the raw 64-bit weight), so
///   the unweighted API is the `w ≡ 1` special case, not a second hash.
///
/// Panics if `members` is empty.
pub fn weighted_rendezvous_owner(key: u64, members: &[ShardWeight]) -> u64 {
    weighted_rendezvous_max(key, members.iter(), |m| m.id, |m| m.weight)
        .map(|m| m.id)
        .expect("rendezvous over empty membership")
}

/// The weight floor substituted for non-finite / non-positive weights.
const MIN_SHARD_WEIGHT: f64 = 1e-6;

/// The rendezvous winner of `key` among `members`, each identified by
/// `id_of` and weighted by `weight_of`. The single definition of winner
/// selection — [`rendezvous_owner`], [`weighted_rendezvous_owner`] and the
/// cluster tier's entry-based hot routing path all go through it, so
/// routing and scheduler ownership can never disagree on a tie-break or
/// weight change.
pub(crate) fn weighted_rendezvous_max<T>(
    key: u64,
    members: impl Iterator<Item = T>,
    id_of: impl Fn(&T) -> u64,
    weight_of: impl Fn(&T) -> f64,
) -> Option<T> {
    let mut best: Option<(f64, u64, u64, T)> = None;
    for m in members {
        let id = id_of(&m);
        let h = rendezvous_weight(key, id);
        // Map the top 53 bits into (0,1): never 0 or 1, so ln is finite.
        let u = ((h >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
        let w = {
            let w = weight_of(&m);
            if w.is_finite() && w > 0.0 {
                w.max(MIN_SHARD_WEIGHT)
            } else {
                MIN_SHARD_WEIGHT
            }
        };
        let score = w / -u.ln();
        let better = match &best {
            None => true,
            // Tie-break: raw 64-bit draw (restores the unweighted
            // ordering when equal weights collapse scores), then the
            // smaller id.
            Some((bs, bh, bid, _)) => {
                score > *bs || (score == *bs && (h > *bh || (h == *bh && id < *bid)))
            }
        };
        if better {
            best = Some((score, h, id, m));
        }
    }
    best.map(|(_, _, _, m)| m)
}

/// The unweighted rendezvous winner — [`weighted_rendezvous_max`] with
/// every weight 1 (bit-identical winners; see there).
pub(crate) fn rendezvous_max<T>(
    key: u64,
    members: impl Iterator<Item = T>,
    id_of: impl Fn(&T) -> u64,
) -> Option<T> {
    weighted_rendezvous_max(key, members, id_of, |_| 1.0)
}

/// The rendezvous top-`k` of `key` among `members`, best first, under
/// exactly [`weighted_rendezvous_max`]'s ordering (score, then raw draw,
/// then smaller id). Since member ids are distinct that ordering is a
/// strict total order, so the ranked list is well-defined and its first
/// element is bit-identical to the single winner — `k = 1` reproduces
/// [`weighted_rendezvous_owner`] exactly.
///
/// Rank is what makes HRW replica sets cheap: a member's score for a key
/// never depends on who else is in the membership, so a join inserts the
/// joiner at its rank and shifts only lower ranks down (the top-`k` set
/// loses at most its last element), and a leave erases one rank and
/// promotes the next — the basis for instant follower promotion.
pub(crate) fn weighted_rendezvous_ranked<T>(
    key: u64,
    members: impl Iterator<Item = T>,
    id_of: impl Fn(&T) -> u64,
    weight_of: impl Fn(&T) -> f64,
    k: usize,
) -> Vec<T> {
    if k == 0 {
        return Vec::new();
    }
    // Small insertion-sorted list (k is 2–3 in practice).
    let mut ranked: Vec<(f64, u64, u64, T)> = Vec::with_capacity(k + 1);
    for m in members {
        let id = id_of(&m);
        let h = rendezvous_weight(key, id);
        let u = ((h >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
        let w = {
            let w = weight_of(&m);
            if w.is_finite() && w > 0.0 {
                w.max(MIN_SHARD_WEIGHT)
            } else {
                MIN_SHARD_WEIGHT
            }
        };
        let score = w / -u.ln();
        let pos = ranked
            .iter()
            .position(|(bs, bh, bid, _)| {
                score > *bs || (score == *bs && (h > *bh || (h == *bh && id < *bid)))
            })
            .unwrap_or(ranked.len());
        if pos < k {
            ranked.insert(pos, (score, h, id, m));
            ranked.truncate(k);
        }
    }
    ranked.into_iter().map(|(_, _, _, m)| m).collect()
}

/// The ranked rendezvous replica set of `key`: the top-`k` members by
/// hashed weight, best first. `owners[0]` is the primary and equals
/// [`rendezvous_owner`] bit-identically; `owners[1..]` are the followers
/// in promotion order. `k` is clamped to the membership size.
///
/// Panics if `members` is empty.
pub fn rendezvous_owners(key: u64, members: &[u64], k: usize) -> Vec<u64> {
    assert!(!members.is_empty(), "rendezvous over empty membership");
    weighted_rendezvous_ranked(key, members.iter().copied(), |&m| m, |_| 1.0, k)
}

/// The ranked *weighted* rendezvous replica set of `key`, best first
/// under [`weighted_rendezvous_owner`]'s ordering: `owners[0]` equals the
/// single weighted winner bit-identically, `owners[1..]` are the
/// followers in promotion order. `k` is clamped to the membership size.
///
/// Panics if `members` is empty.
pub fn weighted_rendezvous_owners(key: u64, members: &[ShardWeight], k: usize) -> Vec<u64> {
    assert!(!members.is_empty(), "rendezvous over empty membership");
    weighted_rendezvous_ranked(key, members.iter(), |m| m.id, |m| m.weight, k)
        .into_iter()
        .map(|m| m.id)
        .collect()
}

/// Tag bit marking a routing key as a *child* cell one level finer than
/// the clustering level (set by [`SplitTable::route_leaf`] for split
/// cells). Cell indexes use at most `2·leaf_level ≤ 62` bits, so the top
/// bit is free.
pub const SPLIT_CHILD_TAG: u64 = 1 << 63;

/// Decodes a routing key into the concrete cell it names: plain keys are
/// cells at `clustering_level`, tagged keys ([`SPLIT_CHILD_TAG`]) are
/// child cells one level finer.
pub fn routing_key_cell(key: u64, clustering_level: u8) -> CellId {
    if key & SPLIT_CHILD_TAG != 0 {
        CellId {
            level: clustering_level + 1,
            index: key & !SPLIT_CHILD_TAG,
        }
    } else {
        CellId {
            level: clustering_level,
            index: key,
        }
    }
}

/// The set of clustering cells whose ownership is split one level finer.
///
/// Placement normally hashes whole clustering cells to shards; a
/// business-center cell hot enough to pin a shard on its own cannot be
/// fixed by any whole-cell assignment. The split table is consulted
/// *before* rendezvous: a split cell routes by its four child cells (one
/// level finer), each hashed independently, so the hot cell's load spreads
/// across up to four shards. Updates still serialize per routing key on
/// one owner, and each child is lazily clustered by its owner as its own
/// (smaller) cell — the clustering-vs-cross-cell-move races this could
/// surface are the same class [`cluster_cell`]'s guarded commit already
/// resolves for ordinary cell-boundary crossings (the merge aborts when
/// the scanned spatial row changed under it).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SplitTable {
    cells: std::collections::BTreeSet<u64>,
}

impl SplitTable {
    /// An empty table (no cell split — the pre-load-aware behaviour).
    pub fn new() -> Self {
        SplitTable::default()
    }

    /// Whether clustering cell `cell` is split.
    pub fn is_split(&self, cell: u64) -> bool {
        self.cells.contains(&cell)
    }

    /// Marks `cell` as split. Returns `false` if it already was.
    pub fn split(&mut self, cell: u64) -> bool {
        self.cells.insert(cell)
    }

    /// Reunites a split `cell`: its four children stop routing
    /// independently and the cell routes whole again. Returns `false` if
    /// the cell was not split. The table is capped (the cluster tier
    /// splits at most a handful of business-center cells), so un-splitting
    /// demand-faded cells is what keeps the cap *re-usable* when the hot
    /// spot moves — the ownership handover itself (children released, the
    /// reunited cell adopted at the earliest child deadline) is the
    /// migration path's `(split, unsplit)` transition.
    pub fn unsplit(&mut self, cell: u64) -> bool {
        self.cells.remove(&cell)
    }

    /// The split cells, ascending.
    pub fn cells(&self) -> impl Iterator<Item = u64> + '_ {
        self.cells.iter().copied()
    }

    /// Number of split cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cell is split.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The four routing keys of a split cell's children.
    pub fn child_keys(cell: u64) -> [u64; 4] {
        [
            SPLIT_CHILD_TAG | (cell << 2),
            SPLIT_CHILD_TAG | ((cell << 2) + 1),
            SPLIT_CHILD_TAG | ((cell << 2) + 2),
            SPLIT_CHILD_TAG | ((cell << 2) + 3),
        ]
    }

    /// The routing key of leaf index `leaf`: the containing clustering
    /// cell, or — when that cell is split — the containing child cell
    /// tagged with [`SPLIT_CHILD_TAG`]. Panics if `clustering_level >
    /// leaf_level` (rejected by config validation) or a split cell has no
    /// finer level to split into.
    pub fn route_leaf(&self, leaf: u64, clustering_level: u8, leaf_level: u8) -> u64 {
        let cell = leaf >> (2 * (leaf_level - clustering_level) as u64);
        if self.is_split(cell) {
            assert!(
                clustering_level < leaf_level,
                "cannot split below the leaf level"
            );
            SPLIT_CHILD_TAG | (leaf >> (2 * (leaf_level - clustering_level - 1) as u64))
        } else {
            cell
        }
    }

    /// Every routing key of the clustering level under this table: each
    /// unsplit cell once, each split cell as its four children. The keys
    /// partition the level exactly (each leaf index maps to exactly one
    /// key via [`route_leaf`]).
    pub fn routing_keys(&self, clustering_level: u8) -> Vec<u64> {
        let mut keys = Vec::new();
        for cell in 0..cells_at_level(clustering_level) {
            if self.is_split(cell) {
                keys.extend(Self::child_keys(cell));
            } else {
                keys.push(cell);
            }
        }
        keys
    }
}

/// Slices a region query's merged leaf-index ranges by rendezvous owner:
/// each range is split at clustering-cell boundaries (a clustering cell at
/// `clustering_level` spans `4^(leaf_level − clustering_level)` contiguous
/// leaf indexes) and every piece goes to the [`rendezvous_owner`] of its
/// clustering cell, with adjacent same-owner pieces re-merged so each shard
/// still scans maximal contiguous ranges.
///
/// The returned slices are an **exact partition** of the input: no leaf
/// index is dropped, duplicated, or moved — the scatter-gather region path
/// scans precisely the ranges the single-server plan would have
/// (property-tested in `moist-core/tests/rendezvous_props.rs`).
///
/// Returns `(owner id, that owner's merged ranges)` pairs in ascending
/// owner-id order. Panics if `members` is empty or `clustering_level >
/// leaf_level` (both are rejected by [`MoistConfig::validate`]).
pub fn slice_ranges_by_owner(
    ranges: &[(u64, u64)],
    clustering_level: u8,
    leaf_level: u8,
    members: &[u64],
) -> Vec<(u64, Vec<(u64, u64)>)> {
    let weighted: Vec<ShardWeight> = members.iter().map(|&id| ShardWeight::unit(id)).collect();
    slice_ranges_by_placement(
        ranges,
        clustering_level,
        leaf_level,
        &weighted,
        &SplitTable::default(),
    )
}

/// [`slice_ranges_by_owner`] under the full placement model: owners are
/// the **weighted** rendezvous winners ([`weighted_rendezvous_owner`]) and
/// cells in `splits` are cut one level finer, each child routed
/// independently — exactly the routing the cluster tier applies to
/// updates, so a scattered query's slices land on the shards that own the
/// matching write traffic. Still an exact partition of the input (the
/// property test covers this variant too).
pub fn slice_ranges_by_placement(
    ranges: &[(u64, u64)],
    clustering_level: u8,
    leaf_level: u8,
    members: &[ShardWeight],
    splits: &SplitTable,
) -> Vec<(u64, Vec<(u64, u64)>)> {
    assert!(
        clustering_level <= leaf_level,
        "clustering level {clustering_level} finer than leaf level {leaf_level}"
    );
    let shift = 2 * (leaf_level - clustering_level) as u64;
    let mut by_owner: std::collections::BTreeMap<u64, Vec<(u64, u64)>> =
        std::collections::BTreeMap::new();
    for &(start, end) in ranges {
        let mut s = start;
        while s < end {
            let cell = s >> shift;
            // Split cells cut at child boundaries so each child's piece
            // can go to its own owner; unsplit cells cut as before.
            let (key, e) = if shift >= 2 && splits.is_split(cell) {
                let child_shift = shift - 2;
                let child = s >> child_shift;
                (SPLIT_CHILD_TAG | child, end.min((child + 1) << child_shift))
            } else {
                (cell, end.min((cell + 1) << shift))
            };
            let slots = by_owner
                .entry(weighted_rendezvous_owner(key, members))
                .or_default();
            match slots.last_mut() {
                Some((_, le)) if *le == s => *le = e,
                _ => slots.push((s, e)),
            }
            s = e;
        }
    }
    by_owner.into_iter().collect()
}

/// [`slice_ranges_by_placement`] under replicated ownership: each routing
/// key's piece goes to the **least-loaded member of its top-`replicas`
/// rendezvous set** ([`weighted_rendezvous_owners`]) as measured by
/// `load_of` (ties towards the better rank, so a level fleet reads from
/// primaries). Reads are correct on any shard — the store is shared — so
/// spreading a key's read slices over its followers scales read
/// throughput per cell without touching the write path, which still
/// serializes on the primary alone.
///
/// Still an exact partition of the input, whatever `load_of` returns.
/// With `replicas <= 1` every piece goes to its primary and the output is
/// exactly [`slice_ranges_by_placement`]'s.
pub fn slice_ranges_by_replicas(
    ranges: &[(u64, u64)],
    clustering_level: u8,
    leaf_level: u8,
    members: &[ShardWeight],
    splits: &SplitTable,
    replicas: usize,
    load_of: impl Fn(u64) -> f64,
) -> Vec<(u64, Vec<(u64, u64)>)> {
    assert!(
        clustering_level <= leaf_level,
        "clustering level {clustering_level} finer than leaf level {leaf_level}"
    );
    let shift = 2 * (leaf_level - clustering_level) as u64;
    let mut by_owner: std::collections::BTreeMap<u64, Vec<(u64, u64)>> =
        std::collections::BTreeMap::new();
    for &(start, end) in ranges {
        let mut s = start;
        while s < end {
            let cell = s >> shift;
            let (key, e) = if shift >= 2 && splits.is_split(cell) {
                let child_shift = shift - 2;
                let child = s >> child_shift;
                (SPLIT_CHILD_TAG | child, end.min((child + 1) << child_shift))
            } else {
                (cell, end.min((cell + 1) << shift))
            };
            let set = weighted_rendezvous_owners(key, members, replicas.max(1));
            let reader = set
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    load_of(a)
                        .partial_cmp(&load_of(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("replica set is non-empty");
            let slots = by_owner.entry(reader).or_default();
            match slots.last_mut() {
                Some((_, le)) if *le == s => *le = e,
                _ => slots.push((s, e)),
            }
            s = e;
        }
    }
    by_owner.into_iter().collect()
}

/// Tracks per-cell clustering deadlines so servers can run lazy clustering
/// on the configured interval `T_c`.
///
/// Deadlines live in a min-heap keyed by due time, so [`due_cells`] is
/// `O(due · log owned)` rather than a full sweep of every cell, and a cell
/// re-arms from its *missed deadline* (advanced by whole intervals past
/// `now`), so late callers do not drift the schedule's phase.
///
/// In a [`crate::cluster_tier::MoistCluster`] each shard holds the
/// scheduler for the cells it wins under [`rendezvous_owner`]; the shards'
/// owned sets form an exact partition of the clustering level, so every
/// cell is clustered by exactly one shard. On a membership change the tier
/// moves only the cells whose rendezvous winner changed, handing each
/// cell's pending deadline from [`release`] on the old owner to [`adopt`]
/// on the new one — the schedule's phase survives the migration, so a
/// joining shard neither re-clusters everything at once nor skips a round.
///
/// [`due_cells`]: ClusterScheduler::due_cells
/// [`release`]: ClusterScheduler::release
/// [`adopt`]: ClusterScheduler::adopt
#[derive(Debug)]
pub struct ClusterScheduler {
    interval_us: u64,
    level: u8,
    /// The owned cell indices (mirrors the heap's contents).
    owned: HashSet<u64>,
    /// Min-heap of `(due_us, cell index)` for the owned cells.
    heap: BinaryHeap<Reverse<(u64, u64)>>,
}

impl ClusterScheduler {
    /// Creates a scheduler owning every cell of `cfg`'s clustering level.
    pub fn new(cfg: &MoistConfig) -> Self {
        let n = cells_at_level(cfg.clustering_level);
        Self::for_cells(cfg, 0..n)
    }

    /// Creates a scheduler owning no cells (a freshly joined shard before
    /// the tier migrates its rendezvous wins over via [`adopt`]).
    ///
    /// [`adopt`]: ClusterScheduler::adopt
    pub fn empty(cfg: &MoistConfig) -> Self {
        Self::for_cells(cfg, std::iter::empty())
    }

    /// Creates the scheduler for member `member` of the membership `ids`:
    /// it owns the clustering cells whose [`rendezvous_owner`] over `ids`
    /// is `member`.
    pub fn for_member(cfg: &MoistConfig, member: u64, ids: &[u64]) -> Self {
        let weighted: Vec<ShardWeight> = ids.iter().map(|&id| ShardWeight::unit(id)).collect();
        Self::for_placement(cfg, member, &weighted, &SplitTable::default())
    }

    /// Creates the scheduler for member `member` under the full placement
    /// model: it owns the routing keys (unsplit cells, plus children of
    /// split cells) whose [`weighted_rendezvous_owner`] over `members` is
    /// `member`. With unit weights and no splits this is exactly
    /// [`for_member`](ClusterScheduler::for_member).
    pub fn for_placement(
        cfg: &MoistConfig,
        member: u64,
        members: &[ShardWeight],
        splits: &SplitTable,
    ) -> Self {
        Self::for_cells(
            cfg,
            splits
                .routing_keys(cfg.clustering_level)
                .into_iter()
                .filter(|&key| weighted_rendezvous_owner(key, members) == member),
        )
    }

    /// Creates a scheduler owning exactly `cells` — routing keys at
    /// `cfg`'s clustering level (plain cell indices, or
    /// [`SPLIT_CHILD_TAG`]-tagged children of split cells).
    ///
    /// First deadlines are staggered by *global* cell index so cells do
    /// not all fire at once (the paper clusters cells sequentially for the
    /// same reason); the stagger is identical no matter how the level is
    /// split across shards, so handing a cell between owners never shifts
    /// its phase. A split cell's children share their parent's stagger
    /// slot (they inherit its deadline phase on a live split too).
    pub fn for_cells(cfg: &MoistConfig, cells: impl IntoIterator<Item = u64>) -> Self {
        let n = cells_at_level(cfg.clustering_level);
        let interval_us = (cfg.cluster_interval_secs * 1e6) as u64;
        // 128-bit multiply before the divide: at fine levels `n` exceeds
        // `interval_us` and the naive `interval_us / n * i` truncates every
        // stagger to 0, re-creating the thundering herd.
        let stagger = |key: u64| {
            let i = if key & SPLIT_CHILD_TAG != 0 {
                (key & !SPLIT_CHILD_TAG) >> 2
            } else {
                key
            };
            (interval_us as u128 * i as u128 / n.max(1) as u128) as u64
        };
        let mut owned = HashSet::new();
        let heap = cells
            .into_iter()
            .filter(|&i| owned.insert(i))
            .map(|i| Reverse((interval_us + stagger(i), i)))
            .collect();
        ClusterScheduler {
            interval_us: interval_us.max(1),
            level: cfg.clustering_level,
            owned,
            heap,
        }
    }

    /// Whether this scheduler owns clustering cell `index`.
    pub fn owns(&self, index: u64) -> bool {
        self.owned.contains(&index)
    }

    /// Number of clustering cells this scheduler owns.
    pub fn owned_count(&self) -> usize {
        self.heap.len()
    }

    /// The owned cell indices, in no particular order.
    pub fn owned_cells(&self) -> Vec<u64> {
        self.owned.iter().copied().collect()
    }

    /// The pending deadline (virtual µs) of owned cell `index`, or `None`
    /// if this scheduler does not own it.
    pub fn deadline_of(&self, index: u64) -> Option<u64> {
        self.heap
            .iter()
            .find(|Reverse((_, i))| *i == index)
            .map(|Reverse((due, _))| *due)
    }

    /// Stops owning cell `index`, returning its pending deadline so the
    /// new owner can [`adopt`](ClusterScheduler::adopt) the cell at the
    /// same phase. Returns `None` (and changes nothing) if the cell was
    /// not owned. `O(owned)` — membership changes are rare.
    pub fn release(&mut self, index: u64) -> Option<u64> {
        if !self.owned.remove(&index) {
            return None;
        }
        let mut released = None;
        let entries: Vec<_> = std::mem::take(&mut self.heap).into_vec();
        self.heap = entries
            .into_iter()
            .filter(|Reverse((due, i))| {
                if *i == index {
                    released = Some(*due);
                    false
                } else {
                    true
                }
            })
            .collect();
        released
    }

    /// Releases every owned cell, returning `(index, pending deadline)`
    /// pairs — the handoff bundle of a shard leaving the tier.
    pub fn drain(&mut self) -> Vec<(u64, u64)> {
        self.owned.clear();
        std::mem::take(&mut self.heap)
            .into_vec()
            .into_iter()
            .map(|Reverse((due, i))| (i, due))
            .collect()
    }

    /// Starts owning cell `index` with the pending deadline `due_us`
    /// (virtual µs) — the counterpart of [`release`] on the cell's new
    /// owner. Adopting preserves the cell's phase: its next clustering
    /// fires exactly when it would have on the old owner, instead of
    /// immediately (a thundering re-cluster) or an interval late (a missed
    /// round). A no-op if the cell is already owned.
    ///
    /// [`release`]: ClusterScheduler::release
    pub fn adopt(&mut self, index: u64, due_us: u64) {
        if self.owned.insert(index) {
            self.heap.push(Reverse((due_us, index)));
        }
    }

    /// Cells due for clustering at `now`, re-armed from their deadline.
    ///
    /// Each returned cell's next deadline is its missed one advanced by
    /// whole intervals until it is strictly in the future: the phase of the
    /// schedule is preserved without accumulating a catch-up backlog, and a
    /// cell fires at most once per call. Routing keys decode to concrete
    /// cells here ([`routing_key_cell`]): a split cell's children come back
    /// as cells one level finer, each clustered as its own smaller cell.
    pub fn due_cells(&mut self, now: Timestamp) -> Vec<CellId> {
        let now_us = now.0;
        let mut due = Vec::new();
        while let Some(&Reverse((due_us, index))) = self.heap.peek() {
            if due_us > now_us {
                break;
            }
            self.heap.pop();
            due.push(routing_key_cell(index, self.level));
            let missed = (now_us - due_us) / self.interval_us + 1;
            self.heap
                .push(Reverse((due_us + missed * self.interval_us, index)));
        }
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::{apply_update, UpdateMessage};
    use moist_bigtable::Bigtable;
    use moist_spatial::{Point, Velocity};
    use std::sync::Arc;

    fn setup() -> (Arc<Bigtable>, MoistTables, Session, MoistConfig) {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            delta_m: 0.5,
            clustering_level: 3,
            ..MoistConfig::default()
        };
        let tables = MoistTables::create(&store, &cfg).unwrap();
        let session = store.session(); // real cost profile: reports need time
        (store, tables, session, cfg)
    }

    #[allow(clippy::too_many_arguments)]
    fn seed_leader(
        s: &mut Session,
        t: &MoistTables,
        cfg: &MoistConfig,
        oid: u64,
        x: f64,
        y: f64,
        vx: f64,
        vy: f64,
    ) {
        apply_update(
            s,
            t,
            cfg,
            &UpdateMessage {
                oid: ObjectId(oid),
                loc: Point::new(x, y),
                vel: Velocity::new(vx, vy),
                ts: Timestamp::from_secs(1),
            },
        )
        .unwrap();
    }

    #[test]
    fn similar_velocity_leaders_merge_into_one_school() {
        let (_st, t, mut s, cfg) = setup();
        // Three nearby leaders, two with near-identical velocities.
        seed_leader(&mut s, &t, &cfg, 1, 100.0, 100.0, 1.0, 0.0);
        seed_leader(&mut s, &t, &cfg, 2, 101.0, 100.0, 1.01, 0.0);
        seed_leader(&mut s, &t, &cfg, 3, 102.0, 100.0, -1.0, 0.0); // opposite
        let cell = cfg
            .space
            .cell_at(cfg.clustering_level, &Point::new(100.0, 100.0));
        let report = cluster_cell(&mut s, &t, &cfg, cell, Timestamp::from_secs(2)).unwrap();
        assert_eq!(report.pre_leaders, 3);
        assert_eq!(report.merged, 1);
        assert_eq!(report.post_leaders, 2);
        // The merged leader is now a follower.
        let lf1 = t.lf(&mut s, ObjectId(1)).unwrap().unwrap();
        let lf2 = t.lf(&mut s, ObjectId(2)).unwrap().unwrap();
        assert_ne!(lf1.is_leader(), lf2.is_leader(), "exactly one survives");
        // Object 3 is untouched.
        assert!(t.lf(&mut s, ObjectId(3)).unwrap().unwrap().is_leader());
        // Spatial index holds exactly the two surviving leaders.
        assert_eq!(
            t.spatial_count_cell(&mut s, cell, cfg.space.leaf_level)
                .unwrap(),
            2
        );
        // Phase breakdown is populated.
        assert!(report.read_us > 0.0 && report.write_us > 0.0);
    }

    #[test]
    fn merge_transfers_followers_with_composed_displacements() {
        let (_st, t, mut s, cfg) = setup();
        seed_leader(&mut s, &t, &cfg, 1, 100.0, 100.0, 1.0, 0.0);
        seed_leader(&mut s, &t, &cfg, 2, 110.0, 100.0, 1.0, 0.0);
        let affiliate = |s: &mut Session, leader: u64, follower: u64, d| {
            t.set_lf(
                s,
                ObjectId(follower),
                &LfRecord::Follower {
                    leader: ObjectId(leader),
                    displacement: d,
                    since_us: 0,
                },
                Timestamp::from_secs(1),
            )
            .unwrap();
            t.add_follower(
                s,
                ObjectId(leader),
                ObjectId(follower),
                d,
                Timestamp::from_secs(1),
            )
            .unwrap();
        };
        // Leader 1 has one follower (9); leader 2 has two (10, 11), so 2
        // survives the merge and 1's school moves over.
        let d9 = moist_spatial::Displacement::new(0.0, 3.0);
        affiliate(&mut s, 1, 9, d9);
        affiliate(&mut s, 2, 10, moist_spatial::Displacement::new(1.0, 0.0));
        affiliate(&mut s, 2, 11, moist_spatial::Displacement::new(2.0, 0.0));
        let cell = cfg
            .space
            .cell_at(cfg.clustering_level, &Point::new(100.0, 100.0));
        let report = cluster_cell(&mut s, &t, &cfg, cell, Timestamp::from_secs(2)).unwrap();
        assert_eq!(report.merged, 1);
        assert_eq!(report.followers_moved, 1, "only the absorbed school moves");
        assert!(t.lf(&mut s, ObjectId(2)).unwrap().unwrap().is_leader());
        // The absorbed leader 1 follows 2 with displacement 2→1 = (-10, 0).
        match t.lf(&mut s, ObjectId(1)).unwrap().unwrap() {
            LfRecord::Follower {
                leader,
                displacement,
                ..
            } => {
                assert_eq!(leader, ObjectId(2));
                assert!((displacement.dx - (-10.0)).abs() < 1e-9);
            }
            _ => panic!("absorbed leader must follow"),
        }
        // Follower 9's displacement composed: 2→1 + 1→9 = (-10, 3).
        match t.lf(&mut s, ObjectId(9)).unwrap().unwrap() {
            LfRecord::Follower {
                leader,
                displacement,
                ..
            } => {
                assert_eq!(leader, ObjectId(2));
                assert!((displacement.dx - (-10.0)).abs() < 1e-9);
                assert!((displacement.dy - 3.0).abs() < 1e-9);
            }
            _ => panic!("moved follower must follow the survivor"),
        }
        // Survivor's Follower Info: 10, 11, moved 9, absorbed 1.
        let followers = t.followers(&mut s, ObjectId(2)).unwrap();
        assert_eq!(followers.len(), 4);
        // Absorbed leader's own Follower Info was cleared.
        assert!(t.followers(&mut s, ObjectId(1)).unwrap().is_empty());
    }

    #[test]
    fn far_apart_leaders_are_not_merged_across_cells() {
        let (_st, t, mut s, cfg) = setup();
        // Same velocity but opposite map corners: different clustering cells.
        seed_leader(&mut s, &t, &cfg, 1, 10.0, 10.0, 1.0, 0.0);
        seed_leader(&mut s, &t, &cfg, 2, 990.0, 990.0, 1.0, 0.0);
        let report = cluster_sweep(&mut s, &t, &cfg, Timestamp::from_secs(2)).unwrap();
        assert_eq!(report.merged, 0, "geographic proximity is required");
        assert_eq!(report.pre_leaders, 2);
    }

    #[test]
    fn empty_and_singleton_cells_are_cheap_noops() {
        let (_st, t, mut s, cfg) = setup();
        seed_leader(&mut s, &t, &cfg, 1, 500.0, 500.0, 1.0, 0.0);
        let empty_cell = cfg
            .space
            .cell_at(cfg.clustering_level, &Point::new(10.0, 10.0));
        let r = cluster_cell(&mut s, &t, &cfg, empty_cell, Timestamp::from_secs(2)).unwrap();
        assert_eq!(r.pre_leaders, 0);
        assert_eq!(r.write_us, 0.0);
        let single = cfg
            .space
            .cell_at(cfg.clustering_level, &Point::new(500.0, 500.0));
        let r = cluster_cell(&mut s, &t, &cfg, single, Timestamp::from_secs(2)).unwrap();
        assert_eq!(r.pre_leaders, 1);
        assert_eq!(r.merged, 0);
    }

    #[test]
    fn clustering_is_idempotent() {
        let (_st, t, mut s, cfg) = setup();
        for i in 0..10 {
            seed_leader(&mut s, &t, &cfg, i, 100.0 + i as f64, 100.0, 1.0, 0.0);
        }
        let cell = cfg
            .space
            .cell_at(cfg.clustering_level, &Point::new(100.0, 100.0));
        let r1 = cluster_cell(&mut s, &t, &cfg, cell, Timestamp::from_secs(2)).unwrap();
        assert_eq!(r1.post_leaders, 1);
        let r2 = cluster_cell(&mut s, &t, &cfg, cell, Timestamp::from_secs(3)).unwrap();
        assert_eq!(r2.pre_leaders, 1);
        assert_eq!(r2.merged, 0, "second clustering finds nothing to merge");
    }

    #[test]
    fn scheduler_fires_each_cell_once_per_interval() {
        let cfg = MoistConfig {
            clustering_level: 1, // 4 cells
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let mut sched = ClusterScheduler::new(&cfg);
        assert!(sched.due_cells(Timestamp::from_secs(5)).is_empty());
        // Deadlines are staggered at 10, 12.5, 15, 17.5 s: after 18 s every
        // cell has fired exactly once.
        let mut fired = 0;
        for t in [10, 12, 15, 18] {
            fired += sched.due_cells(Timestamp::from_secs(t)).len();
        }
        assert_eq!(fired, 4);
        // They re-arm one interval past their deadline.
        let more = sched.due_cells(Timestamp::from_secs(40)).len();
        assert_eq!(more, 4);
    }

    #[test]
    fn scheduler_rearms_from_deadline_not_call_time() {
        let cfg = MoistConfig {
            clustering_level: 0, // one cell, first due at 10 s
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let mut sched = ClusterScheduler::new(&cfg);
        // A caller 3 s late: the cell fires, and the schedule keeps its
        // phase (next deadline 20 s, not 23 s).
        assert_eq!(sched.due_cells(Timestamp::from_secs(13)).len(), 1);
        assert!(sched.due_cells(Timestamp::from_secs(19)).is_empty());
        assert_eq!(sched.due_cells(Timestamp::from_secs(20)).len(), 1);
        // A caller several intervals late gets the cell once, not a
        // backlog of catch-up firings; phase is still preserved.
        assert_eq!(sched.due_cells(Timestamp::from_secs(57)).len(), 1);
        assert!(sched.due_cells(Timestamp::from_secs(59)).is_empty());
        assert_eq!(sched.due_cells(Timestamp::from_secs(60)).len(), 1);
    }

    #[test]
    fn rendezvous_owner_is_order_independent_and_total() {
        let ids = [3u64, 11, 42, 7];
        let mut reversed = ids;
        reversed.reverse();
        for key in 0..256u64 {
            let owner = rendezvous_owner(key, &ids);
            assert!(ids.contains(&owner));
            assert_eq!(owner, rendezvous_owner(key, &reversed), "key {key}");
        }
        // Each member wins a non-trivial share (hash balance, not exact).
        for &m in &ids {
            let won = (0..256u64)
                .filter(|&k| rendezvous_owner(k, &ids) == m)
                .count();
            assert!(won > 20, "member {m} won only {won}/256 cells");
        }
    }

    #[test]
    fn equal_weights_reproduce_the_unweighted_owner() {
        let ids = [3u64, 11, 42, 7, 900_001];
        let weighted: Vec<ShardWeight> = ids.iter().map(|&id| ShardWeight::unit(id)).collect();
        for key in 0..4096u64 {
            assert_eq!(
                rendezvous_owner(key, &ids),
                weighted_rendezvous_owner(key, &weighted),
                "key {key}"
            );
        }
    }

    #[test]
    fn heavier_members_win_proportionally_more_keys() {
        let members = [
            ShardWeight { id: 1, weight: 1.0 },
            ShardWeight { id: 2, weight: 2.0 },
            ShardWeight { id: 3, weight: 4.0 },
        ];
        let mut won = [0u64; 3];
        let keys = 8192u64;
        for key in 0..keys {
            let owner = weighted_rendezvous_owner(key, &members);
            won[members.iter().position(|m| m.id == owner).unwrap()] += 1;
        }
        // Expected shares 1/7, 2/7, 4/7 within generous hash noise.
        for (i, m) in members.iter().enumerate() {
            let expect = keys as f64 * m.weight / 7.0;
            let got = won[i] as f64;
            assert!(
                (got - expect).abs() < expect * 0.25 + 32.0,
                "member {} won {} keys, expected ≈{}",
                m.id,
                got,
                expect
            );
        }
    }

    #[test]
    fn ranked_owners_lead_with_the_single_winner() {
        let ids = [3u64, 11, 42, 7, 900_001];
        let weighted: Vec<ShardWeight> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| ShardWeight {
                id,
                weight: 0.5 + i as f64,
            })
            .collect();
        for key in 0..4096u64 {
            // k = 1 is the single winner, bit for bit, in both flavours.
            assert_eq!(
                rendezvous_owners(key, &ids, 1),
                vec![rendezvous_owner(key, &ids)],
                "key {key}"
            );
            assert_eq!(
                weighted_rendezvous_owners(key, &weighted, 1),
                vec![weighted_rendezvous_owner(key, &weighted)],
                "key {key}"
            );
            // Larger k keeps rank 0 the winner and extends with distinct
            // followers; k past the membership clamps.
            let set = weighted_rendezvous_owners(key, &weighted, 3);
            assert_eq!(set.len(), 3);
            assert_eq!(set[0], weighted_rendezvous_owner(key, &weighted));
            let mut uniq = set.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "replica set has no duplicates");
            let all = weighted_rendezvous_owners(key, &weighted, 99);
            assert_eq!(all.len(), ids.len(), "k clamps to the membership");
            assert_eq!(&all[..3], &set[..], "rank prefix is stable in k");
        }
    }

    #[test]
    fn ranked_owners_are_prefix_stable_under_leave() {
        // Removing one member promotes the next rank for exactly the keys
        // it appeared on — every other key's ranked prefix is untouched.
        let ids = [3u64, 11, 42, 7, 900_001];
        for key in 0..2048u64 {
            let before = rendezvous_owners(key, &ids, 3);
            let departed = before[0];
            let survivors: Vec<u64> = ids.iter().copied().filter(|&m| m != departed).collect();
            let after = rendezvous_owners(key, &survivors, 2);
            assert_eq!(
                after[..2],
                before[1..3],
                "key {key}: the old followers must step up in order"
            );
        }
    }

    #[test]
    fn replica_slicing_partitions_and_degenerates_to_placement() {
        let members: Vec<ShardWeight> = [1u64, 2, 5, 9]
            .iter()
            .map(|&id| ShardWeight::unit(id))
            .collect();
        let (cl, ll) = (2u8, 5u8);
        let ranges = [(0u64, 700u64), (800, 1024)];
        // replicas = 1 reproduces the placement slicing exactly.
        let placement =
            slice_ranges_by_placement(&ranges, cl, ll, &members, &SplitTable::default());
        let by_primary =
            slice_ranges_by_replicas(&ranges, cl, ll, &members, &SplitTable::default(), 1, |_| {
                0.0
            });
        assert_eq!(placement, by_primary);
        // replicas = 2 with a load signal still partitions the input.
        let sliced =
            slice_ranges_by_replicas(&ranges, cl, ll, &members, &SplitTable::default(), 2, |id| {
                if id == 1 {
                    100.0
                } else {
                    id as f64
                }
            });
        let mut total = 0u64;
        for (_, slices) in &sliced {
            for &(s, e) in slices {
                assert!(s < e);
                total += e - s;
            }
        }
        assert_eq!(total, 700 + 224, "no leaf dropped or duplicated");
        // Shard 1 is the heaviest: it serves a key only when it is the
        // sole replica-set member available, which never happens at k=2
        // over 4 live shards — its read load shifts to its followers.
        assert!(
            sliced.iter().all(|&(id, _)| id != 1),
            "overloaded shard must not serve replica reads: {sliced:?}"
        );
    }

    #[test]
    fn degenerate_weights_are_floored_not_fatal() {
        let members = [
            ShardWeight {
                id: 1,
                weight: f64::NAN,
            },
            ShardWeight {
                id: 2,
                weight: -3.0,
            },
            ShardWeight { id: 3, weight: 1.0 },
        ];
        // Every key has a winner; the healthy member dominates.
        let mut healthy = 0;
        for key in 0..512u64 {
            if weighted_rendezvous_owner(key, &members) == 3 {
                healthy += 1;
            }
        }
        assert!(healthy > 450, "floored weights must not win: {healthy}/512");
    }

    #[test]
    fn split_table_routes_leaves_through_children() {
        let (cl, ll) = (2u8, 5u8);
        let mut splits = SplitTable::new();
        assert!(splits.split(6));
        assert!(!splits.split(6), "double split is a no-op");
        // A leaf in an unsplit cell routes to the cell itself.
        let leaf_unsplit = 3 << (2 * (ll - cl));
        assert_eq!(splits.route_leaf(leaf_unsplit, cl, ll), 3);
        // A leaf in the split cell routes to its tagged child.
        let leaf_split = (6 << (2 * (ll - cl))) + 17;
        let key = splits.route_leaf(leaf_split, cl, ll);
        assert_ne!(key & SPLIT_CHILD_TAG, 0);
        let child = routing_key_cell(key, cl);
        assert_eq!(child.level, cl + 1);
        assert_eq!(child.index >> 2, 6, "child must descend from cell 6");
        // The routing keys partition the level: 15 unsplit + 4 children.
        let keys = splits.routing_keys(cl);
        assert_eq!(keys.len(), 15 + 4);
        let mut covered = std::collections::HashSet::new();
        for key in keys {
            let cell = routing_key_cell(key, cl);
            let (s, e) = cell.descendant_range(ll).unwrap();
            for leaf in s..e {
                assert!(covered.insert(leaf), "leaf {leaf} covered twice");
                assert_eq!(splits.route_leaf(leaf, cl, ll), key);
            }
        }
        assert_eq!(covered.len() as u64, 1 << (2 * ll));
    }

    #[test]
    fn split_table_cap_is_reusable_through_unsplit() {
        // The cluster tier caps the table at 16 entries. Un-splitting
        // must free capacity so a *moving* hot spot recycles the cap
        // instead of permanently exhausting it.
        const CAP: usize = 16;
        let mut splits = SplitTable::new();
        for cell in 0..CAP as u64 {
            assert!(splits.split(cell));
        }
        assert_eq!(splits.len(), CAP, "table full");
        // The hot spot fades in the first four cells and moves on.
        for cell in 0..4u64 {
            assert!(splits.unsplit(cell));
            assert!(!splits.unsplit(cell), "double un-split is a no-op");
            assert!(!splits.is_split(cell));
        }
        assert_eq!(splits.len(), CAP - 4, "capacity freed");
        // The freed capacity takes new hot cells up to the cap again.
        for cell in 100..104u64 {
            assert!(splits.split(cell));
        }
        assert_eq!(splits.len(), CAP);
        // An un-split cell routes whole again; a still-split one doesn't.
        let (cl, ll) = (3u8, 5u8);
        assert_eq!(splits.route_leaf(1 << (2 * (ll - cl)), cl, ll), 1);
        assert_ne!(
            splits.route_leaf(5 << (2 * (ll - cl)), cl, ll) & SPLIT_CHILD_TAG,
            0
        );
    }

    #[test]
    fn placement_slicing_cuts_split_cells_at_child_boundaries() {
        let (cl, ll) = (1u8, 4u8);
        let members = [
            ShardWeight::unit(10),
            ShardWeight::unit(20),
            ShardWeight::unit(30),
        ];
        let mut splits = SplitTable::new();
        splits.split(2);
        let span = 1u64 << (2 * ll);
        let slices = slice_ranges_by_placement(&[(0, span)], cl, ll, &members, &splits);
        // Exact partition, and every piece inside cell 2 belongs to the
        // weighted owner of its child key.
        let mut flat: Vec<(u64, u64)> = Vec::new();
        let child_shift = 2 * (ll - cl - 1) as u64;
        for (owner, ranges) in &slices {
            for &(s, e) in ranges {
                flat.push((s, e));
                let cell = s >> (2 * (ll - cl) as u64);
                if cell == 2 {
                    for child in (s >> child_shift)..=((e - 1) >> child_shift) {
                        assert_eq!(
                            weighted_rendezvous_owner(SPLIT_CHILD_TAG | child, &members),
                            *owner
                        );
                    }
                }
            }
        }
        flat.sort_unstable();
        let total: u64 = flat.iter().map(|(s, e)| e - s).sum();
        assert_eq!(total, span, "no leaf dropped or duplicated");
    }

    #[test]
    fn schedulers_decode_split_children_to_finer_cells() {
        let cfg = MoistConfig {
            clustering_level: 2, // 16 cells
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let mut splits = SplitTable::new();
        splits.split(5);
        let members = [ShardWeight::unit(0)];
        let mut sched = ClusterScheduler::for_placement(&cfg, 0, &members, &splits);
        assert_eq!(sched.owned_count(), 15 + 4);
        let due = sched.due_cells(Timestamp::from_secs(100));
        assert_eq!(due.len(), 15 + 4);
        let fine: Vec<&CellId> = due.iter().filter(|c| c.level == 3).collect();
        assert_eq!(fine.len(), 4, "the split cell fires as four children");
        for c in fine {
            assert_eq!(c.index >> 2, 5);
        }
        assert!(
            due.iter().filter(|c| c.level == 2).all(|c| c.index != 5),
            "the split parent itself never fires"
        );
    }

    #[test]
    fn rendezvous_schedulers_cover_each_cell_exactly_once() {
        let cfg = MoistConfig {
            clustering_level: 4, // 256 cells
            ..MoistConfig::default()
        };
        for ids in [vec![0u64], vec![0, 1], vec![5, 9, 13], vec![2, 3, 5, 7, 11]] {
            let scheds: Vec<ClusterScheduler> = ids
                .iter()
                .map(|&m| ClusterScheduler::for_member(&cfg, m, &ids))
                .collect();
            let total: usize = scheds.iter().map(|s| s.owned_count()).sum();
            assert_eq!(total, 256, "{ids:?} must partition the level");
            for index in 0..256u64 {
                let owners = scheds.iter().filter(|s| s.owns(index)).count();
                assert_eq!(owners, 1, "cell {index} with members {ids:?}");
                let winner = rendezvous_owner(index, &ids);
                let pos = ids.iter().position(|&m| m == winner).unwrap();
                assert!(scheds[pos].owns(index));
            }
        }
    }

    #[test]
    fn rendezvous_schedulers_fire_owned_cells_only() {
        let cfg = MoistConfig {
            clustering_level: 3, // 64 cells
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let ids = [0u64, 1, 2, 3];
        let mut scheds: Vec<ClusterScheduler> = ids
            .iter()
            .map(|&m| ClusterScheduler::for_member(&cfg, m, &ids))
            .collect();
        // Past every staggered first deadline (they all lie in [T, 2T)).
        let now = Timestamp::from_secs(25);
        let mut seen = std::collections::HashSet::new();
        for (pos, sched) in scheds.iter_mut().enumerate() {
            for cell in sched.due_cells(now) {
                assert_eq!(rendezvous_owner(cell.index, &ids), ids[pos]);
                assert!(seen.insert(cell.index), "cell {} fired twice", cell.index);
            }
        }
        assert_eq!(seen.len(), 64, "every cell fires exactly once");
    }

    #[test]
    fn release_and_adopt_hand_a_cell_over_at_its_phase() {
        let cfg = MoistConfig {
            clustering_level: 2, // 16 cells
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let mut old = ClusterScheduler::new(&cfg);
        let mut joiner = ClusterScheduler::empty(&cfg);
        assert_eq!(joiner.owned_count(), 0);
        let due = old.deadline_of(5).unwrap();
        assert_eq!(old.release(5), Some(due));
        assert!(!old.owns(5));
        assert_eq!(old.owned_count(), 15);
        assert_eq!(old.release(5), None, "double release is a no-op");
        joiner.adopt(5, due);
        assert!(joiner.owns(5));
        assert_eq!(joiner.deadline_of(5), Some(due), "phase survives handoff");
        // Adopting an already-owned cell does not duplicate it.
        joiner.adopt(5, due + 1);
        assert_eq!(joiner.owned_count(), 1);
        // The released cell never fires on the old owner again.
        let fired: Vec<u64> = old
            .due_cells(Timestamp::from_secs(1_000))
            .iter()
            .map(|c| c.index)
            .collect();
        assert!(!fired.contains(&5));
        // …but fires on the joiner, at the handed-over deadline.
        assert!(joiner.due_cells(Timestamp(due - 1)).is_empty());
        assert_eq!(joiner.due_cells(Timestamp(due)).len(), 1);
    }

    #[test]
    fn drain_returns_every_owned_cell_with_its_deadline() {
        let cfg = MoistConfig {
            clustering_level: 2, // 16 cells
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let mut sched = ClusterScheduler::new(&cfg);
        let expected: Vec<(u64, u64)> = (0..16u64)
            .map(|i| (i, sched.deadline_of(i).unwrap()))
            .collect();
        let mut drained = sched.drain();
        drained.sort_unstable();
        assert_eq!(drained, expected);
        assert_eq!(sched.owned_count(), 0);
        assert!(sched.due_cells(Timestamp::from_secs(1_000)).is_empty());
    }
}
