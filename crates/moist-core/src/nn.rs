//! Nearest-neighbour search (§3.4, Algorithm 2).
//!
//! Two priority queues drive the search: `Q_cell` pops the unvisited NN cell
//! closest to the query point; `Q_obj` keeps the best `k` candidates seen so
//! far, popping its *furthest* member. A cell whose lower-bound distance
//! exceeds the current k-th candidate distance terminates the loop, because
//! cell distance lower-bounds every object inside it.
//!
//! NN cells live at a tunable level `l_n` coarser than the table's leaf
//! level `l_s`; by the curve's prefix property each NN cell is one
//! contiguous row range, fetched with a single batch scan.

use crate::config::MoistConfig;
use crate::error::Result;
use crate::ids::ObjectId;
use crate::tables::{MoistTables, SpatialEntry};
use moist_bigtable::{Session, Timestamp};
use moist_spatial::{CellId, Point, Rect};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// One returned neighbour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The object.
    pub oid: ObjectId,
    /// Its (possibly estimated/predicted) world location.
    pub loc: Point,
    /// Distance to the query point, world units.
    pub distance: f64,
    /// The leader of the object's school (itself for leaders).
    pub leader: ObjectId,
}

/// Query shaping.
#[derive(Debug, Clone, Copy)]
pub struct NnOptions {
    /// Maximum neighbours returned (`k`).
    pub k: usize,
    /// NN cell level `l_n` (tune with FLAG or fix per the paper's
    /// "Search Level 19/20" baselines).
    pub nn_level: u8,
    /// Expand schools: include followers at their estimated locations
    /// (§3.4 steps iii–iv). When false only leaders are returned.
    pub include_followers: bool,
    /// Predictive search horizon in seconds: candidates are evaluated at
    /// `at + predict_secs` under linear motion (§3.4.1's "predictive
    /// version"). Zero for current positions.
    pub predict_secs: f64,
    /// Search-range limit in world units (§4.3.1's "search range limit"):
    /// neighbours beyond this distance are never returned and cells beyond
    /// it are never scanned. `f64::INFINITY` disables the limit.
    pub max_distance: f64,
}

impl NnOptions {
    /// `k` nearest with followers, no prediction, at `nn_level`.
    pub fn new(k: usize, nn_level: u8) -> Self {
        NnOptions {
            k,
            nn_level,
            include_followers: true,
            predict_secs: 0.0,
            max_distance: f64::INFINITY,
        }
    }

    /// Same, with a search-range limit in world units.
    pub fn within(k: usize, nn_level: u8, max_distance: f64) -> Self {
        NnOptions {
            max_distance: max_distance.max(0.0),
            ..NnOptions::new(k, nn_level)
        }
    }
}

/// Statistics of one NN query, for the Figure 12 benches.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NnStats {
    /// NN cells popped and scanned.
    pub cells_scanned: usize,
    /// Leader rows retrieved from the Spatial Index Table.
    pub leaders_fetched: usize,
    /// Shards that contributed partial scans (1 for single-server runs).
    pub shards_scattered: usize,
    /// Client-visible virtual µs. Scattered partials overlap, so a merged
    /// query reports the slowest partial, not the sum.
    pub cost_us: f64,
}

/// One scattered candidate: the neighbour plus the ring cell whose scan
/// surfaced it (for a school expansion, its *leader's* cell). The merge
/// needs the source cell to replay Algorithm 2's frontier cutoff exactly
/// — see [`merge_ring_partials`].
#[derive(Debug, Clone, Copy)]
pub struct NnCandidate {
    /// The candidate itself.
    pub neighbor: Neighbor,
    /// The scanned cell that produced it.
    pub cell: CellId,
}

/// One shard's share of a scattered NN query: every candidate its ring
/// cells produced (no local dedup, no truncation — the merge replays the
/// single-shard search over the union, so partials must not pre-filter)
/// plus that scan's counters.
#[derive(Debug, Default)]
pub struct NnPartial {
    /// Raw candidates from this shard's ring cells.
    pub candidates: Vec<NnCandidate>,
    /// This partial's own scan counters and virtual cost.
    pub stats: NnStats,
}

/// Total-ordered f64 for heap keys (NaN-free by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Dist(f64);

impl Eq for Dist {}

impl PartialOrd for Dist {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dist {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// World-space rectangle of a unit-space cell.
fn cell_world_rect(cfg: &MoistConfig, cell: CellId) -> Rect {
    let b = cell.bounds(cfg.space.curve);
    let lo = cfg.space.to_world(&Point::new(b.min_x, b.min_y));
    let hi = cfg.space.to_world(&Point::new(b.max_x, b.max_y));
    Rect::new(lo.x, lo.y, hi.x, hi.y)
}

/// Evaluated position of a leader record at the query's evaluation time.
fn eval_position(entry: &SpatialEntry, eval_at: Timestamp) -> Point {
    let dt = eval_at.secs_since(entry.ts);
    entry.record.loc.advance(entry.record.vel, dt)
}

/// Runs Algorithm 2 and (optionally) the school expansion of §3.4.
///
/// Returns up to `k` neighbours sorted by ascending distance, plus the
/// query statistics.
pub fn nn_query(
    s: &mut Session,
    tables: &MoistTables,
    cfg: &MoistConfig,
    center: Point,
    at: Timestamp,
    opts: &NnOptions,
) -> Result<(Vec<Neighbor>, NnStats)> {
    let mut stats = NnStats {
        shards_scattered: 1,
        ..NnStats::default()
    };
    if opts.k == 0 {
        return Ok((Vec::new(), stats));
    }
    let cost0 = s.elapsed_us();
    let eval_at = at.plus_secs(opts.predict_secs.max(0.0));
    let nn_level = opts.nn_level.min(cfg.space.leaf_level);

    // Q_cell: min-heap on distance (BinaryHeap is a max-heap → Reverse).
    let mut q_cell: BinaryHeap<std::cmp::Reverse<(Dist, CellId)>> = BinaryHeap::new();
    let mut seen: HashSet<CellId> = HashSet::new();
    let start = cfg.space.cell_at(nn_level, &center);
    q_cell.push(std::cmp::Reverse((Dist(0.0), start)));
    seen.insert(start);

    // Q_obj: max-heap of the best k leader candidates (furthest on top).
    let mut q_obj: BinaryHeap<(Dist, u64)> = BinaryHeap::new();
    let mut found: Vec<(SpatialEntry, Point, f64, CellId)> = Vec::new();
    let mut dist_max = f64::INFINITY;

    while let Some(std::cmp::Reverse((Dist(cell_dist), cell))) = q_cell.pop() {
        if cell_dist > dist_max.min(opts.max_distance) {
            break; // Line 7: nearest remaining cell cannot improve Q_obj.
        }
        // One contiguous batch scan per cell.
        let entries = tables.spatial_scan_cell(s, cell, cfg.space.leaf_level, None)?;
        stats.cells_scanned += 1;
        stats.leaders_fetched += entries.len();
        for entry in entries {
            let pos = eval_position(&entry, eval_at);
            let d = center.distance(&pos);
            if d > opts.max_distance {
                continue;
            }
            q_obj.push((Dist(d), entry.oid.0));
            found.push((entry, pos, d, cell));
            if q_obj.len() > opts.k {
                q_obj.pop();
            }
            if q_obj.len() == opts.k {
                dist_max = q_obj.peek().map(|(Dist(d), _)| *d).unwrap_or(f64::INFINITY);
            }
        }
        // Lines 19–21: push the edge neighbours.
        for n in cell.edge_neighbors(cfg.space.curve) {
            if seen.insert(n) {
                let d = cell_world_rect(cfg, n).distance_to_point(&center);
                q_cell.push(std::cmp::Reverse((Dist(d), n)));
            }
        }
    }

    let mut candidates: Vec<Neighbor> = expand_school_candidates(s, tables, &center, &found, opts)?
        .into_iter()
        .map(|c| c.neighbor)
        .collect();
    // Ties break by object id, so the ranking is a property of the data —
    // not of scan order — and a scattered merge reproduces it exactly.
    // Each object appears once: a leader is exactly one spatial entry, a
    // follower lives in exactly one school, and the clustering merge's
    // guarded commit keeps those disjoint even under racing cross-cell
    // moves (a merge whose scanned row changed aborts).
    candidates.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.oid.cmp(&b.oid)));
    candidates.truncate(opts.k);
    stats.cost_us = s.elapsed_us() - cost0;
    Ok((candidates, stats))
}

/// The candidate ring of an NN query: the cell containing `center` at
/// `nn_level` plus its edge neighbours — exactly the cells Algorithm 2
/// visits first. A cluster tier scatters the ring's scans across the
/// shards owning its cells when the ring crosses an ownership boundary.
pub fn nn_candidate_ring(cfg: &MoistConfig, center: &Point, nn_level: u8) -> Vec<CellId> {
    let level = nn_level.min(cfg.space.leaf_level);
    let start = cfg.space.cell_at(level, center);
    let mut ring = vec![start];
    ring.extend(start.edge_neighbors(cfg.space.curve));
    ring
}

/// Scans an explicit set of NN cells — one shard's slice of a scattered
/// candidate ring — and returns every candidate they produce, with
/// schools expanded and each candidate stamped with its source cell. No
/// frontier search, no dedup, no truncation: the caller's
/// [`merge_ring_partials`] replays Algorithm 2 over the union, so a
/// partial must hand over exactly what a single-shard scan of these cells
/// would have seen.
pub fn nn_partial_scan(
    s: &mut Session,
    tables: &MoistTables,
    cfg: &MoistConfig,
    cells: &[CellId],
    center: Point,
    at: Timestamp,
    opts: &NnOptions,
) -> Result<NnPartial> {
    let mut stats = NnStats {
        shards_scattered: 1,
        ..NnStats::default()
    };
    if opts.k == 0 {
        return Ok(NnPartial {
            candidates: Vec::new(),
            stats,
        });
    }
    let cost0 = s.elapsed_us();
    let eval_at = at.plus_secs(opts.predict_secs.max(0.0));
    let mut found: Vec<(SpatialEntry, Point, f64, CellId)> = Vec::new();
    for &cell in cells {
        let entries = tables.spatial_scan_cell(s, cell, cfg.space.leaf_level, None)?;
        stats.cells_scanned += 1;
        stats.leaders_fetched += entries.len();
        for entry in entries {
            let pos = eval_position(&entry, eval_at);
            let d = center.distance(&pos);
            if d <= opts.max_distance {
                found.push((entry, pos, d, cell));
            }
        }
    }
    let candidates = expand_school_candidates(s, tables, &center, &found, opts)?;
    stats.cost_us = s.elapsed_us() - cost0;
    Ok(NnPartial { candidates, stats })
}

/// §3.4 steps (iii)–(iv) applied to a set of scanned leader entries:
/// builds each leader's candidate and batch-expands its school (one RPC),
/// stamping every candidate with its leader's source cell and filtering
/// by the search-range limit. Shared by [`nn_query`] and
/// [`nn_partial_scan`], so the frontier search and the scattered replay
/// can never drift apart in how they evaluate candidates.
fn expand_school_candidates(
    s: &mut Session,
    tables: &MoistTables,
    center: &Point,
    found: &[(SpatialEntry, Point, f64, CellId)],
    opts: &NnOptions,
) -> Result<Vec<NnCandidate>> {
    let mut candidates: Vec<NnCandidate> = Vec::with_capacity(found.len());
    for (entry, pos, d, cell) in found {
        candidates.push(NnCandidate {
            neighbor: Neighbor {
                oid: entry.oid,
                loc: *pos,
                distance: *d,
                leader: entry.oid,
            },
            cell: *cell,
        });
    }
    if opts.include_followers && !found.is_empty() {
        let leader_ids: Vec<ObjectId> = found.iter().map(|(e, _, _, _)| e.oid).collect();
        let infos = tables.batch_followers(s, &leader_ids)?;
        for (i, followers) in infos.into_iter().enumerate() {
            let leader_pos = found[i].1;
            for (foid, disp) in followers {
                let pos = leader_pos.translate(disp);
                let d = center.distance(&pos);
                if d <= opts.max_distance {
                    candidates.push(NnCandidate {
                        neighbor: Neighbor {
                            oid: foid,
                            loc: pos,
                            distance: d,
                            leader: leader_ids[i],
                        },
                        cell: found[i].3,
                    });
                }
            }
        }
    }
    Ok(candidates)
}

/// Merges scattered ring partials by **replaying** [`nn_query`]'s
/// frontier over the scanned candidates, so a successful merge returns
/// exactly the single-shard Algorithm 2 answer — not merely a plausible
/// one.
///
/// The replay runs the same loop the real search runs — pop the nearest
/// frontier cell (ties towards the smaller index), stop when it cannot
/// improve `Q_obj`, push its edge neighbours — with one difference: a
/// cell's leaders come from the already-scanned partials instead of the
/// store. Two outcomes:
///
/// * the replayed frontier terminates having popped **ring cells only**
///   → the real search would have scanned exactly those cells, so the
///   answer is assembled from their candidates alone. Extra ring cells
///   the real search would not have popped are discarded, school
///   expansions and all — follower displacement and velocity
///   extrapolation can neither smuggle in nor hide a candidate the
///   single-shard path would (not) have seen;
/// * the replay reaches a cell **outside the ring** while it could still
///   improve `Q_obj` → `(None, stats)`: the caller must fall back to the
///   real single-shard search, which is exact by construction.
///
/// `ring[0]` must be the search's start cell (as
/// [`nn_candidate_ring`] returns it). Candidates move (no clones);
/// cross-shard duplicates — an object sighted by two partials scanned at
/// different instants — keep their nearest sighting. Counters add;
/// `cost_us` is the slowest partial (scattered scans overlap in
/// parallel).
pub fn merge_ring_partials(
    cfg: &MoistConfig,
    center: &Point,
    ring: &[CellId],
    parts: Vec<NnPartial>,
    opts: &NnOptions,
) -> (Option<Vec<Neighbor>>, NnStats) {
    let mut stats = NnStats::default();
    let total: usize = parts.iter().map(|p| p.candidates.len()).sum();
    let mut candidates: Vec<NnCandidate> = Vec::with_capacity(total);
    for part in parts {
        stats.cells_scanned += part.stats.cells_scanned;
        stats.leaders_fetched += part.stats.leaders_fetched;
        stats.shards_scattered += part.stats.shards_scattered;
        stats.cost_us = stats.cost_us.max(part.stats.cost_us);
        candidates.extend(part.candidates);
    }
    let in_ring: HashSet<CellId> = ring.iter().copied().collect();

    // Per-cell leader distances drive the replayed Q_obj bound, exactly
    // like the entries pushed while the real search scans that cell.
    let mut leaders_by_cell: std::collections::HashMap<CellId, Vec<f64>> =
        std::collections::HashMap::new();
    for c in &candidates {
        if c.neighbor.oid == c.neighbor.leader {
            leaders_by_cell
                .entry(c.cell)
                .or_default()
                .push(c.neighbor.distance);
        }
    }

    let mut q_cell: BinaryHeap<std::cmp::Reverse<(Dist, CellId)>> = BinaryHeap::new();
    let mut seen: HashSet<CellId> = HashSet::new();
    let start = ring[0];
    q_cell.push(std::cmp::Reverse((Dist(0.0), start)));
    seen.insert(start);
    let mut q_obj: BinaryHeap<Dist> = BinaryHeap::new();
    let mut dist_max = f64::INFINITY;
    let mut included: HashSet<CellId> = HashSet::new();
    while let Some(std::cmp::Reverse((Dist(cell_dist), cell))) = q_cell.pop() {
        if cell_dist > dist_max.min(opts.max_distance) {
            break; // the real search terminates here too
        }
        if !in_ring.contains(&cell) {
            // The real search would scan beyond what was scattered.
            return (None, stats);
        }
        included.insert(cell);
        for &d in leaders_by_cell.get(&cell).map_or(&[][..], |v| v) {
            if d > opts.max_distance {
                continue;
            }
            q_obj.push(Dist(d));
            if q_obj.len() > opts.k {
                q_obj.pop();
            }
            if q_obj.len() == opts.k {
                dist_max = q_obj.peek().map(|Dist(d)| *d).unwrap_or(f64::INFINITY);
            }
        }
        for n in cell.edge_neighbors(cfg.space.curve) {
            if seen.insert(n) {
                let d = cell_world_rect(cfg, n).distance_to_point(center);
                q_cell.push(std::cmp::Reverse((Dist(d), n)));
            }
        }
    }

    // Assemble the answer from the replay-scanned cells only: the same
    // candidate set, ranking and truncation as the real search.
    candidates.retain(|c| included.contains(&c.cell));
    let mut merged: Vec<Neighbor> = candidates.into_iter().map(|c| c.neighbor).collect();
    // The same (distance, oid) order nn_query uses: concatenation order of
    // the partials must not leak into tie-breaking.
    merged.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.oid.cmp(&b.oid)));
    // Partials are scanned by different shards at different instants, so
    // an object moving between ring cells mid-scatter can be sighted by
    // two partials; keep its nearest sighting (a single-shard scan is one
    // instant and cannot double-sight).
    let mut reported: HashSet<ObjectId> = HashSet::new();
    merged.retain(|n| reported.insert(n.oid));
    merged.truncate(opts.k);
    (Some(merged), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::{apply_update, UpdateMessage};
    use moist_bigtable::{Bigtable, CostProfile};
    use moist_spatial::Velocity;
    use std::sync::Arc;

    fn setup() -> (Arc<Bigtable>, MoistTables, Session, MoistConfig) {
        let store = Bigtable::new();
        let cfg = MoistConfig::default();
        let tables = MoistTables::create(&store, &cfg).unwrap();
        let session = store.session_with(CostProfile::free());
        (store, tables, session, cfg)
    }

    fn put(s: &mut Session, t: &MoistTables, cfg: &MoistConfig, oid: u64, x: f64, y: f64) {
        apply_update(
            s,
            t,
            cfg,
            &UpdateMessage {
                oid: ObjectId(oid),
                loc: Point::new(x, y),
                vel: Velocity::ZERO,
                ts: Timestamp::from_secs(1),
            },
        )
        .unwrap();
    }

    #[test]
    fn finds_the_true_k_nearest_leaders() {
        let (_st, t, mut s, cfg) = setup();
        // A ring of objects around (500,500) at distances 10, 20, ..., 100.
        for i in 1..=10u64 {
            put(&mut s, &t, &cfg, i, 500.0 + 10.0 * i as f64, 500.0);
        }
        let opts = NnOptions::new(3, 8);
        let (nn, stats) = nn_query(
            &mut s,
            &t,
            &cfg,
            Point::new(500.0, 500.0),
            Timestamp::from_secs(1),
            &opts,
        )
        .unwrap();
        assert_eq!(nn.len(), 3);
        let ids: Vec<u64> = nn.iter().map(|n| n.oid.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert!((nn[0].distance - 10.0).abs() < 1e-9);
        assert!(nn.windows(2).all(|w| w[0].distance <= w[1].distance));
        assert!(stats.cells_scanned >= 1);
    }

    #[test]
    fn exactness_against_brute_force_on_scattered_points() {
        let (_st, t, mut s, cfg) = setup();
        // Deterministic scatter.
        let mut pts = Vec::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..200u64 {
            let (x, y) = (next() * 1000.0, next() * 1000.0);
            pts.push((i, x, y));
            put(&mut s, &t, &cfg, i, x, y);
        }
        let center = Point::new(333.0, 667.0);
        for level in [4u8, 6, 8, 10] {
            let opts = NnOptions::new(10, level);
            let (nn, _) =
                nn_query(&mut s, &t, &cfg, center, Timestamp::from_secs(1), &opts).unwrap();
            let mut brute: Vec<(u64, f64)> = pts
                .iter()
                .map(|&(i, x, y)| (i, center.distance(&Point::new(x, y))))
                .collect();
            brute.sort_by(|a, b| a.1.total_cmp(&b.1));
            let want: Vec<u64> = brute[..10].iter().map(|&(i, _)| i).collect();
            let got: Vec<u64> = nn.iter().map(|n| n.oid.0).collect();
            assert_eq!(got, want, "level {level} disagrees with brute force");
        }
    }

    #[test]
    fn followers_are_expanded_and_can_outrank_far_leaders() {
        let (_st, t, mut s, cfg) = setup();
        put(&mut s, &t, &cfg, 1, 510.0, 500.0); // leader, 10 away
        put(&mut s, &t, &cfg, 2, 600.0, 500.0); // leader, 100 away
                                                // Follower of 1 sitting 5 away from the query point.
        let d = moist_spatial::Displacement::new(-5.0, 0.0);
        t.set_lf(
            &mut s,
            ObjectId(3),
            &crate::codec::LfRecord::Follower {
                leader: ObjectId(1),
                displacement: d,
                since_us: 0,
            },
            Timestamp::from_secs(1),
        )
        .unwrap();
        t.add_follower(&mut s, ObjectId(1), ObjectId(3), d, Timestamp::from_secs(1))
            .unwrap();
        let opts = NnOptions::new(2, 8);
        let (nn, _) = nn_query(
            &mut s,
            &t,
            &cfg,
            Point::new(500.0, 500.0),
            Timestamp::from_secs(1),
            &opts,
        )
        .unwrap();
        let ids: Vec<u64> = nn.iter().map(|n| n.oid.0).collect();
        assert_eq!(ids, vec![3, 1], "follower at 5 beats leader at 10");
        assert_eq!(nn[0].leader, ObjectId(1));
        // Leaders-only mode skips the school expansion.
        let opts = NnOptions {
            include_followers: false,
            ..opts
        };
        let (nn, _) = nn_query(
            &mut s,
            &t,
            &cfg,
            Point::new(500.0, 500.0),
            Timestamp::from_secs(1),
            &opts,
        )
        .unwrap();
        let ids: Vec<u64> = nn.iter().map(|n| n.oid.0).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn predictive_search_uses_future_positions() {
        let (_st, t, mut s, cfg) = setup();
        // Object 1 near now but racing away; object 2 far now but closing in.
        apply_update(
            &mut s,
            &t,
            &cfg,
            &UpdateMessage {
                oid: ObjectId(1),
                loc: Point::new(510.0, 500.0),
                vel: Velocity::new(50.0, 0.0),
                ts: Timestamp::from_secs(0),
            },
        )
        .unwrap();
        apply_update(
            &mut s,
            &t,
            &cfg,
            &UpdateMessage {
                oid: ObjectId(2),
                loc: Point::new(700.0, 500.0),
                vel: Velocity::new(-50.0, 0.0),
                ts: Timestamp::from_secs(0),
            },
        )
        .unwrap();
        let now_opts = NnOptions::new(1, 6);
        let (nn, _) = nn_query(
            &mut s,
            &t,
            &cfg,
            Point::new(500.0, 500.0),
            Timestamp::from_secs(0),
            &now_opts,
        )
        .unwrap();
        assert_eq!(nn[0].oid, ObjectId(1), "object 1 is nearest now");
        let future_opts = NnOptions {
            predict_secs: 4.0,
            ..now_opts
        };
        // At t+4: object 1 at 710, object 2 at 500 → object 2 wins.
        let (nn, _) = nn_query(
            &mut s,
            &t,
            &cfg,
            Point::new(500.0, 500.0),
            Timestamp::from_secs(0),
            &future_opts,
        )
        .unwrap();
        assert_eq!(nn[0].oid, ObjectId(2), "object 2 is nearest at t+4s");
    }

    #[test]
    fn empty_index_and_k_zero() {
        let (_st, t, mut s, cfg) = setup();
        let (nn, stats) = nn_query(
            &mut s,
            &t,
            &cfg,
            Point::new(1.0, 1.0),
            Timestamp::ZERO,
            &NnOptions::new(5, 6),
        )
        .unwrap();
        assert!(nn.is_empty());
        // Scanned the whole (empty) frontier without looping forever.
        assert!(stats.cells_scanned > 0);
        put(&mut s, &t, &cfg, 1, 2.0, 2.0);
        let (nn, _) = nn_query(
            &mut s,
            &t,
            &cfg,
            Point::new(1.0, 1.0),
            Timestamp::ZERO,
            &NnOptions::new(0, 6),
        )
        .unwrap();
        assert!(nn.is_empty());
    }

    #[test]
    fn query_from_map_corner_stays_in_bounds() {
        let (_st, t, mut s, cfg) = setup();
        put(&mut s, &t, &cfg, 1, 5.0, 5.0);
        let (nn, _) = nn_query(
            &mut s,
            &t,
            &cfg,
            Point::new(0.0, 0.0),
            Timestamp::from_secs(1),
            &NnOptions::new(1, 6),
        )
        .unwrap();
        assert_eq!(nn.len(), 1);
        assert_eq!(nn[0].oid, ObjectId(1));
    }
}
