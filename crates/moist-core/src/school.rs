//! Object schools (§3.3): estimated locations and membership.
//!
//! An object school (OS) is a leader `L` plus the followers `F` whose real
//! locations stay within ε of their *estimated* locations:
//!
//! `OS = { F | Distance(Loc, ELoc) < ε }`
//!
//! where `ELoc = Loc'_L + (L → F)`: the leader's position extrapolated
//! linearly to the query time plus the stored displacement.

use crate::codec::LocationRecord;
use moist_bigtable::Timestamp;
use moist_spatial::{Displacement, Point};

/// Computes a follower's estimated location at `at` (§3.3.1, steps i–iv):
/// advance the leader's last record linearly to `at`, then apply the stored
/// displacement `leader → follower`.
pub fn estimated_location(
    leader_record: &LocationRecord,
    leader_ts: Timestamp,
    displacement: Displacement,
    at: Timestamp,
) -> Point {
    let dt = at.secs_since(leader_ts);
    leader_record
        .loc
        .advance(leader_record.vel, dt)
        .translate(displacement)
}

/// Whether a follower reporting `reported` at `at` remains in its school.
///
/// Two ways to stay (§3.3.1 + §3.3.3):
/// * the report is within ε of the *estimated* location, or
/// * the report is within ε of the **leader's own** extrapolated position —
///   "if a follower is near the leader, it is still within the OS even if it
///   changes the moving pattern radically (e.g. most passengers just leaving
///   a metro will still be in geographical proximity for a while)".
pub fn within_school(
    leader_record: &LocationRecord,
    leader_ts: Timestamp,
    displacement: Displacement,
    reported: &Point,
    at: Timestamp,
    epsilon: f64,
) -> bool {
    let leader_now = leader_record
        .loc
        .advance(leader_record.vel, at.secs_since(leader_ts));
    let eloc = leader_now.translate(displacement);
    eloc.distance(reported) <= epsilon || leader_now.distance(reported) <= epsilon
}

#[cfg(test)]
mod tests {
    use super::*;
    use moist_spatial::Velocity;

    fn leader_rec() -> LocationRecord {
        LocationRecord {
            loc: Point::new(100.0, 100.0),
            vel: Velocity::new(2.0, 0.0),
            leaf_index: 0,
        }
    }

    #[test]
    fn estimation_extrapolates_leader_motion() {
        // Leader at (100,100) moving +2/s in x, recorded at t=10 s.
        // Follower displaced (0, 5). At t=15 s: leader (110,100), est (110,105).
        let eloc = estimated_location(
            &leader_rec(),
            Timestamp::from_secs(10),
            Displacement::new(0.0, 5.0),
            Timestamp::from_secs(15),
        );
        assert!((eloc.x - 110.0).abs() < 1e-12);
        assert!((eloc.y - 105.0).abs() < 1e-12);
    }

    #[test]
    fn membership_respects_epsilon() {
        let ts = Timestamp::from_secs(10);
        let at = Timestamp::from_secs(15);
        let disp = Displacement::new(0.0, 5.0);
        // Dead on the estimate.
        assert!(within_school(
            &leader_rec(),
            ts,
            disp,
            &Point::new(110.0, 105.0),
            at,
            1.0
        ));
        // 3 units off with ε = 5: stays.
        assert!(within_school(
            &leader_rec(),
            ts,
            disp,
            &Point::new(113.0, 105.0),
            at,
            5.0
        ));
        // 3 units off with ε = 2: departs.
        assert!(!within_school(
            &leader_rec(),
            ts,
            disp,
            &Point::new(113.0, 105.0),
            at,
            2.0
        ));
        // ε = 0 keeps only exact matches (the paper's no-schooling mode
        // treats every deviation as a departure).
        assert!(within_school(
            &leader_rec(),
            ts,
            disp,
            &Point::new(110.0, 105.0),
            at,
            0.0
        ));
    }

    #[test]
    fn estimation_with_stale_clock_is_identity() {
        // Query at the record's own timestamp: no extrapolation.
        let ts = Timestamp::from_secs(10);
        let eloc = estimated_location(&leader_rec(), ts, Displacement::ZERO, ts);
        assert_eq!(eloc, Point::new(100.0, 100.0));
        // Query *before* the record (clock skew): secs_since saturates to 0.
        let eloc = estimated_location(
            &leader_rec(),
            ts,
            Displacement::ZERO,
            Timestamp::from_secs(5),
        );
        assert_eq!(eloc, Point::new(100.0, 100.0));
    }
}
