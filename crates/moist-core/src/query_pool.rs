//! A shared pool of query worker threads for scatter-gather fan-out.
//!
//! `moist_workload::ClientPool` spawns scoped OS threads per call — fine
//! for driving a bench, far too heavy to pay on every query. A
//! [`QueryPool`] keeps a fixed set of workers alive for the lifetime of a
//! [`crate::cluster_tier::MoistCluster`] and lets any caller [`scatter`] a
//! batch of closures across them: each shard's slice of a scattered
//! region/NN query runs on a pooled worker, so the per-shard store scans
//! overlap on real OS threads exactly like the paper's parallel BigTable
//! range reads (§3.2.1).
//!
//! Multiple queries may scatter concurrently; their tasks interleave over
//! the same workers and each task only ever takes one shard lock, so the
//! pool introduces no lock-ordering cycles. A panicking task is caught on
//! the worker (keeping the pool alive) and re-raised on the caller.
//!
//! [`scatter`]: QueryPool::scatter

use parking_lot::Mutex;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads executing scattered query tasks.
pub struct QueryPool {
    /// Job sender; `None` only during drop (closing it stops the workers).
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryPool {
    /// Spawns a pool of `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("moist-query-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn query worker")
            })
            .collect();
        QueryPool {
            tx: Some(tx),
            workers,
        }
    }

    /// A pool sized to the machine (one worker per available core, capped
    /// at 16 — scattered slices beyond that queue and still complete).
    pub fn sized_for_host() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        QueryPool::new(cores.clamp(2, 16))
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs every task on the pool and returns their results in task
    /// order, blocking until all complete. A single task runs inline on
    /// the caller (no reason to pay a thread hop). If any task panicked,
    /// the panic is re-raised here after the rest have finished.
    pub fn scatter<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        if tasks.len() <= 1 {
            return tasks.into_iter().map(|t| t()).collect();
        }
        let n = tasks.len();
        let (result_tx, result_rx) = channel();
        let tx = self.tx.as_ref().expect("pool is alive");
        for (i, task) in tasks.into_iter().enumerate() {
            let result_tx = result_tx.clone();
            tx.send(Box::new(move || {
                let out = catch_unwind(AssertUnwindSafe(task));
                let _ = result_tx.send((i, out));
            }))
            .expect("workers are alive");
        }
        drop(result_tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut panicked = None;
        for _ in 0..n {
            let (i, out) = result_rx.recv().expect("worker delivered a result");
            match out {
                Ok(v) => slots[i] = Some(v),
                Err(p) => panicked = Some(p),
            }
        }
        if let Some(p) = panicked {
            resume_unwind(p);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every task completed"))
            .collect()
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the receiver lock only while dequeuing: jobs themselves run
        // unlocked, so workers execute in parallel.
        let job = match rx.lock().recv() {
            Ok(job) => job,
            Err(_) => return, // pool dropped its sender: shut down
        };
        job();
    }
}

impl Drop for QueryPool {
    fn drop(&mut self) {
        self.tx.take(); // closes the channel; workers drain and exit
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scatter_returns_results_in_task_order() {
        let pool = QueryPool::new(4);
        assert_eq!(pool.threads(), 4);
        let tasks: Vec<_> = (0..32).map(|i| move || i * 10).collect();
        assert_eq!(
            pool.scatter(tasks),
            (0..32).map(|i| i * 10).collect::<Vec<_>>()
        );
        // Single task runs inline and still returns.
        assert_eq!(pool.scatter(vec![|| 7]), vec![7]);
        assert_eq!(pool.scatter(Vec::<fn() -> i32>::new()), Vec::<i32>::new());
    }

    #[test]
    fn tasks_overlap_across_workers() {
        let pool = QueryPool::new(4);
        let in_flight = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<_> = (0..4)
            .map(|_| {
                let in_flight = Arc::clone(&in_flight);
                let peak = Arc::clone(&peak);
                move || {
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        pool.scatter(tasks);
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "4 sleeping tasks on 4 workers must overlap"
        );
    }

    #[test]
    fn a_panicking_task_propagates_without_killing_the_pool() {
        let pool = QueryPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scatter(vec![
                Box::new(|| 1) as Box<dyn FnOnce() -> i32 + Send>,
                Box::new(|| panic!("task exploded")),
            ]);
        }));
        assert!(caught.is_err(), "the task panic must surface");
        // The pool survives and keeps serving.
        let tasks: Vec<_> = (0..8).map(|i| move || i).collect();
        assert_eq!(pool.scatter(tasks), (0..8).collect::<Vec<_>>());
    }
}
