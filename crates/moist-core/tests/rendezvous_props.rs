//! Property tests for rendezvous cell ownership — the minimal-remap
//! contract elastic membership rests on (vendored proptest):
//!
//! 1. **join** — adding one shard to an N-shard membership remaps at most
//!    ⌈cells/(N+1)⌉ plus statistical slack, and every remapped cell moves
//!    *to the joiner* (an exact structural property, not a bound);
//! 2. **leave** — removing one shard remaps exactly the departed shard's
//!    cells and nothing else;
//! 3. **order independence** — ownership is a function of the membership
//!    *set*, not the order the ids are listed in;
//! 4. **agreement** — [`ClusterScheduler::for_member`] slices form an
//!    exact partition that agrees with [`rendezvous_owner`], so routing
//!    and clustering can never disagree about a cell's home shard.
//!
//! The load-aware placement layer extends the contract (same suite):
//!
//! 5. **proportional share** — under [`weighted_rendezvous_owner`] each
//!    member owns a key share proportional to its weight, within
//!    statistical slack;
//! 6. **weight-change minimality** — raising one member's weight only
//!    moves keys *to* it, lowering it only moves keys *away* from it;
//! 7. **split-table agreement** — with weights and hot-cell splits in
//!    play, [`ClusterScheduler::for_placement`] slices still partition
//!    the routing keys exactly and agree with the weighted owner of every
//!    leaf's routing key, and [`slice_ranges_by_placement`] remains an
//!    exact partition of any range set.
//!
//! The replicated-ownership layer extends it again (same suite):
//!
//! 8. **rank-0 pin** — `rendezvous_owners(key, m, 1)` is bit-identical to
//!    the single `rendezvous_owner` (weighted variant included), so a
//!    `replicas == 1` tier is exactly the pre-replica tier;
//! 9. **prefix stability** — a join or leave never reorders the surviving
//!    members of a replica set: a leave promotes the next-ranked member in
//!    place, a join can only insert the joiner (possibly displacing the
//!    tail) — the property instant follower promotion rests on.
//!
//! The pipelined ingestion layer extends it again (same suite):
//!
//! 10. **epoch-crossing flush** — a batch enqueued under epoch E and
//!     drained by a join or leave under epoch E+1 lands every update on
//!     its key's *current* rank-0 primary exactly once: enqueue-time
//!     routing is advisory, apply-time routing is authoritative.

use moist_bigtable::{Bigtable, Timestamp};
use moist_core::{
    rendezvous_owner, rendezvous_owners, slice_ranges_by_owner, slice_ranges_by_placement,
    weighted_rendezvous_owner, weighted_rendezvous_owners, ClusterScheduler, IngestConfig,
    MoistCluster, MoistConfig, ObjectId, ShardWeight, SplitTable, SubmitOutcome, UpdateMessage,
};
use moist_spatial::{Point, Velocity};
use proptest::prelude::*;

/// A membership of 1–12 distinct shard ids drawn from a wide id space
/// (ids are never reused in the tier, so gaps and large values are the
/// norm after churn).
fn membership(rng: &mut TestRng, max_len: usize) -> Vec<u64> {
    let len = 1 + (rng.below(max_len as u64) as usize);
    let mut ids = Vec::with_capacity(len);
    while ids.len() < len {
        let id = rng.below(1 << 20);
        if !ids.contains(&id) {
            ids.push(id);
        }
    }
    ids
}

/// Fisher–Yates shuffle driven by the deterministic test RNG.
fn shuffled(rng: &mut TestRng, mut ids: Vec<u64>) -> Vec<u64> {
    for i in (1..ids.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        ids.swap(i, j);
    }
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn join_remaps_at_most_its_fair_share_and_only_to_the_joiner(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("join_remap", seed);
        let ids = membership(&mut rng, 12);
        let joiner = loop {
            let id = rng.below(1 << 20) + (1 << 20); // disjoint from members
            if !ids.contains(&id) {
                break id;
            }
        };
        let mut grown = ids.clone();
        grown.push(joiner);
        let cells: u64 = 1024;
        let n1 = grown.len() as u64;

        let mut remapped = 0u64;
        for cell in 0..cells {
            let before = rendezvous_owner(cell, &ids);
            let after = rendezvous_owner(cell, &grown);
            if before != after {
                remapped += 1;
                // Exact structural property: a cell only ever moves to the
                // joiner — the incumbents' weights did not change.
                prop_assert_eq!(after, joiner, "cell {} moved between incumbents", cell);
            }
        }
        // The joiner's fair share is cells/(N+1). The winner counts are
        // binomial-ish, so allow generous slack — but stay far below the
        // near-total remap a modular hash over the count would cause.
        let fair = cells.div_ceil(n1);
        let slack = fair / 2 + 32;
        prop_assert!(
            remapped <= fair + slack,
            "remapped {} of {} cells; fair share {} (+{} slack) with {} members",
            remapped, cells, fair, slack, n1
        );
    }

    #[test]
    fn leave_remaps_exactly_the_departed_shards_cells(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("leave_remap", seed);
        let mut ids = membership(&mut rng, 12);
        if ids.len() < 2 {
            ids.push(ids[0] + 1);
        }
        let departed = ids[rng.below(ids.len() as u64) as usize];
        let survivors: Vec<u64> = ids.iter().copied().filter(|&m| m != departed).collect();

        for cell in 0..1024u64 {
            let before = rendezvous_owner(cell, &ids);
            let after = rendezvous_owner(cell, &survivors);
            if before == departed {
                // The departed shard's cells land on some survivor.
                prop_assert!(survivors.contains(&after));
            } else {
                // Everyone else's cells do not move at all.
                prop_assert_eq!(after, before, "cell {} moved without cause", cell);
            }
        }
    }

    #[test]
    fn ownership_is_independent_of_membership_list_order(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("order_independence", seed);
        let ids = membership(&mut rng, 12);
        let reordered = shuffled(&mut rng, ids.clone());
        for cell in 0..512u64 {
            prop_assert_eq!(
                rendezvous_owner(cell, &ids),
                rendezvous_owner(cell, &reordered),
                "cell {} owner depends on list order", cell
            );
        }
    }

    #[test]
    fn owner_sliced_ranges_exactly_partition_the_range_set(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("owner_slices", seed);
        let ids = membership(&mut rng, 10);
        let clustering_level = (rng.below(6) + 1) as u8; // 1..=6
        let leaf_level = clustering_level + (rng.below(5) as u8); // up to +4 finer
        let leaf_span = 1u64 << (2 * leaf_level as u64);
        let shift = 2 * (leaf_level - clustering_level) as u64;

        // A random set of disjoint, non-adjacent merged ranges — the shape
        // `plan_region_ranges` produces (gaps >= 1 keep them maximal).
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        let mut cursor = rng.below(8);
        while cursor < leaf_span && ranges.len() < 24 {
            let len = 1 + rng.below(leaf_span.div_ceil(6).max(1));
            let end = (cursor + len).min(leaf_span);
            ranges.push((cursor, end));
            cursor = end + 1 + rng.below(16);
        }
        if ranges.is_empty() {
            ranges.push((0, leaf_span)); // tiny level: fall back to the full span
        }

        let slices = slice_ranges_by_owner(&ranges, clustering_level, leaf_level, &ids);

        // Every slice belongs to the rendezvous owner of every clustering
        // cell it spans.
        for (owner, slice) in &slices {
            prop_assert!(ids.contains(owner));
            for &(start, end) in slice {
                prop_assert!(start < end, "empty slice range");
                for cell in (start >> shift)..=((end - 1) >> shift) {
                    prop_assert_eq!(
                        rendezvous_owner(cell, &ids), *owner,
                        "slice [{}, {}) spans cell {} owned elsewhere", start, end, cell
                    );
                }
            }
        }

        // Exact partition: flattening every owner's slices and re-merging
        // adjacency reproduces the input ranges — no leaf index dropped,
        // duplicated, or moved.
        let mut flat: Vec<(u64, u64)> = slices.iter().flat_map(|(_, s)| s.iter().copied()).collect();
        flat.sort_unstable();
        for pair in flat.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].0, "overlapping slices: {:?}", pair);
        }
        let mut rebuilt: Vec<(u64, u64)> = Vec::new();
        for (start, end) in flat {
            match rebuilt.last_mut() {
                Some((_, e)) if *e == start => *e = end,
                _ => rebuilt.push((start, end)),
            }
        }
        prop_assert_eq!(rebuilt, ranges, "slices do not rebuild the input range set");
    }

    #[test]
    fn weighted_ownership_share_tracks_weight(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("weighted_share", seed);
        let ids = membership(&mut rng, 6);
        let weight_choices = [0.5, 1.0, 2.0, 4.0];
        let members: Vec<ShardWeight> = ids
            .iter()
            .map(|&id| ShardWeight {
                id,
                weight: weight_choices[rng.below(weight_choices.len() as u64) as usize],
            })
            .collect();
        let total_weight: f64 = members.iter().map(|m| m.weight).sum();
        let keys = 4096u64;
        let mut won = vec![0u64; members.len()];
        for key in 0..keys {
            let owner = weighted_rendezvous_owner(key, &members);
            let pos = members.iter().position(|m| m.id == owner).unwrap();
            won[pos] += 1;
        }
        for (pos, m) in members.iter().enumerate() {
            let expect = keys as f64 * m.weight / total_weight;
            let got = won[pos] as f64;
            // Binomial-ish noise: half the expectation plus a flat floor
            // covers the small-share members without hiding a broken
            // weighting (which would be off by integer factors).
            prop_assert!(
                (got - expect).abs() <= expect * 0.5 + 48.0,
                "member {} (w={}) won {} of {} keys, expected ≈{:.0}",
                m.id, m.weight, got, keys, expect
            );
        }
    }

    #[test]
    fn weight_change_remaps_only_toward_or_away_from_the_reweighted_shard(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("weight_change_remap", seed);
        let ids = membership(&mut rng, 8);
        let members: Vec<ShardWeight> = ids
            .iter()
            .map(|&id| ShardWeight {
                id,
                weight: 0.5 + rng.below(8) as f64 / 2.0,
            })
            .collect();
        let target = members[rng.below(members.len() as u64) as usize].id;
        let rescale = |factor: f64| -> Vec<ShardWeight> {
            members
                .iter()
                .map(|m| ShardWeight {
                    id: m.id,
                    weight: if m.id == target { m.weight * factor } else { m.weight },
                })
                .collect()
        };
        let raised = rescale(2.0);
        let lowered = rescale(0.5);
        let mut toward = 0u64;
        for key in 0..1024u64 {
            let before = weighted_rendezvous_owner(key, &members);
            let up = weighted_rendezvous_owner(key, &raised);
            if up != before {
                // An exact structural property: only the raised member's
                // score changed, so keys can only move *to* it.
                prop_assert_eq!(up, target, "key {} moved between bystanders", key);
                toward += 1;
            }
            let down = weighted_rendezvous_owner(key, &lowered);
            if down != before {
                prop_assert_eq!(before, target, "key {} left an un-reweighted shard", key);
                prop_assert!(down != target);
            }
        }
        // Doubling a weight must actually attract keys (unless the member
        // already owned essentially everything).
        let owned_before = (0..1024u64)
            .filter(|&k| weighted_rendezvous_owner(k, &members) == target)
            .count();
        prop_assert!(
            toward > 0 || owned_before > 900,
            "doubling member {}'s weight attracted nothing (owned {} before)",
            target, owned_before
        );
    }

    #[test]
    fn split_table_routing_agrees_with_scheduler_partitioning(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("split_table_agreement", seed);
        let ids = membership(&mut rng, 6);
        let members: Vec<ShardWeight> = ids
            .iter()
            .map(|&id| ShardWeight {
                id,
                weight: 0.5 + rng.below(6) as f64 / 2.0,
            })
            .collect();
        let cfg = MoistConfig {
            clustering_level: 3, // 64 cells
            ..MoistConfig::default()
        };
        let mut splits = SplitTable::new();
        for _ in 0..(1 + rng.below(3)) {
            splits.split(rng.below(64));
        }

        // The for_placement slices partition the routing keys exactly.
        let scheds: Vec<ClusterScheduler> = ids
            .iter()
            .map(|&m| ClusterScheduler::for_placement(&cfg, m, &members, &splits))
            .collect();
        let keys = splits.routing_keys(cfg.clustering_level);
        let total: usize = scheds.iter().map(|s| s.owned_count()).sum();
        prop_assert_eq!(total, keys.len(), "schedulers must partition the routing keys");
        for &key in &keys {
            let winner = weighted_rendezvous_owner(key, &members);
            for (pos, sched) in scheds.iter().enumerate() {
                prop_assert_eq!(
                    sched.owns(key),
                    ids[pos] == winner,
                    "routing key {:#x} ownership disagrees with routing", key
                );
            }
        }

        // Sampled leaves route to a key owned by exactly the shard that
        // schedules it — update routing and clustering can never disagree,
        // split cells included.
        let leaf_level = cfg.space.leaf_level;
        let leaf_span = 1u64 << (2 * leaf_level as u64);
        for _ in 0..128 {
            let leaf = rng.below(leaf_span);
            let key = splits.route_leaf(leaf, cfg.clustering_level, leaf_level);
            prop_assert!(keys.contains(&key));
            let winner = weighted_rendezvous_owner(key, &members);
            let pos = ids.iter().position(|&m| m == winner).unwrap();
            prop_assert!(scheds[pos].owns(key), "leaf {} schedules elsewhere", leaf);
        }

        // slice_ranges_by_placement stays an exact partition with weights
        // and splits in play.
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        let mut cursor = rng.below(1 << 8);
        while cursor < leaf_span && ranges.len() < 16 {
            let len = 1 + rng.below(leaf_span / 5);
            let end = (cursor + len).min(leaf_span);
            ranges.push((cursor, end));
            cursor = end + 1 + rng.below(1 << 30);
        }
        if ranges.is_empty() {
            ranges.push((0, leaf_span));
        }
        let slices = slice_ranges_by_placement(
            &ranges,
            cfg.clustering_level,
            leaf_level,
            &members,
            &splits,
        );
        let mut flat: Vec<(u64, u64)> = slices.iter().flat_map(|(_, s)| s.iter().copied()).collect();
        flat.sort_unstable();
        for pair in flat.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].0, "overlapping slices: {:?}", pair);
        }
        let mut rebuilt: Vec<(u64, u64)> = Vec::new();
        for (start, end) in flat {
            match rebuilt.last_mut() {
                Some((_, e)) if *e == start => *e = end,
                _ => rebuilt.push((start, end)),
            }
        }
        prop_assert_eq!(rebuilt, ranges, "placement slices do not rebuild the input");
        // And every slice's leaves route to its owner.
        for (owner, slice) in &slices {
            for &(start, end) in slice {
                for leaf in [start, end - 1] {
                    let key = splits.route_leaf(leaf, cfg.clustering_level, leaf_level);
                    prop_assert_eq!(weighted_rendezvous_owner(key, &members), *owner);
                }
            }
        }
    }

    #[test]
    fn scheduler_slices_partition_the_level_and_agree_with_routing(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("scheduler_agreement", seed);
        let ids = membership(&mut rng, 8);
        let cfg = MoistConfig {
            clustering_level: 4, // 256 cells
            ..MoistConfig::default()
        };
        let scheds: Vec<ClusterScheduler> = ids
            .iter()
            .map(|&m| ClusterScheduler::for_member(&cfg, m, &ids))
            .collect();
        let total: usize = scheds.iter().map(|s| s.owned_count()).sum();
        prop_assert_eq!(total, 256, "members {:?} must partition the level", ids);
        for cell in 0..256u64 {
            let winner = rendezvous_owner(cell, &ids);
            for (pos, sched) in scheds.iter().enumerate() {
                prop_assert_eq!(
                    sched.owns(cell),
                    ids[pos] == winner,
                    "cell {} ownership disagrees with routing", cell
                );
            }
        }
    }

    #[test]
    fn replica_set_rank_zero_is_the_single_owner_bit_identically(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("replica_rank0", seed);
        let ids = membership(&mut rng, 12);
        // Mix equal and unequal weights so the PR-5 tie-break (hash, then
        // smaller id) is exercised, not just the score comparison.
        let members: Vec<ShardWeight> = ids
            .iter()
            .map(|&id| ShardWeight {
                id,
                weight: if rng.below(2) == 0 { 1.0 } else { 0.5 + rng.below(6) as f64 / 2.0 },
            })
            .collect();
        for key in 0..1024u64 {
            // k = 1 is the pre-replica tier, bit for bit.
            prop_assert_eq!(
                rendezvous_owners(key, &ids, 1),
                vec![rendezvous_owner(key, &ids)]
            );
            prop_assert_eq!(
                weighted_rendezvous_owners(key, &members, 1),
                vec![weighted_rendezvous_owner(key, &members)]
            );
            // And rank 0 of any larger set is still that winner, with all
            // members distinct and the set clamped to the membership.
            let k = 1 + (rng.below(4) as usize);
            let owners = weighted_rendezvous_owners(key, &members, k);
            prop_assert_eq!(owners.len(), k.min(members.len()));
            prop_assert_eq!(owners[0], weighted_rendezvous_owner(key, &members));
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), owners.len(), "replica set repeats a member");
        }
    }

    #[test]
    fn replica_sets_are_prefix_stable_under_join_and_leave(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("replica_prefix", seed);
        let mut ids = membership(&mut rng, 10);
        if ids.len() < 2 {
            ids.push(ids[0] + 1);
        }
        let k = 2 + (rng.below(2) as usize); // 2..=3, the practical range
        let departed = ids[rng.below(ids.len() as u64) as usize];
        let survivors: Vec<u64> = ids.iter().copied().filter(|&m| m != departed).collect();
        let joiner = loop {
            let id = rng.below(1 << 20) + (1 << 20);
            if !ids.contains(&id) {
                break id;
            }
        };
        let mut grown = ids.clone();
        grown.push(joiner);

        for key in 0..1024u64 {
            let before = rendezvous_owners(key, &ids, k);

            // Leave: the departed member drops out of every set it was in;
            // everyone else keeps their relative rank (a rank-0 departure
            // promotes the rank-1 follower in place — instant promotion),
            // and only the freed tail slot is refilled.
            let after_leave = rendezvous_owners(key, &survivors, k);
            let kept: Vec<u64> = before.iter().copied().filter(|&m| m != departed).collect();
            prop_assert!(
                after_leave.starts_with(&kept),
                "key {}: leave reordered survivors ({:?} -> {:?})", key, before, after_leave
            );

            // Join: incumbents never reorder — stripping the joiner from
            // the new set leaves a prefix of the old one.
            let after_join = rendezvous_owners(key, &grown, k);
            let incumbents: Vec<u64> =
                after_join.iter().copied().filter(|&m| m != joiner).collect();
            prop_assert!(
                before.starts_with(&incumbents),
                "key {}: join reordered incumbents ({:?} -> {:?})", key, before, after_join
            );
        }
    }

    #[test]
    fn epoch_crossing_flushes_land_once_on_the_current_primary(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("epoch_cross_flush", seed);
        let store = Bigtable::new();
        let shards = 2 + rng.below(4) as usize; // 2..=5 live shards
        let cluster = MoistCluster::builder(&store, MoistConfig::default())
            .shards(shards)
            .ingest(IngestConfig {
                batch_size: 4096, // nothing size-flushes: only the epoch bump drains
                ..IngestConfig::default()
            })
            .build()
            .unwrap();

        // Enqueue a randomized spread of registrations under epoch E.
        let n = 24 + rng.below(25) as usize; // 24..=48
        let mut msgs = Vec::with_capacity(n);
        for i in 0..n {
            let m = UpdateMessage {
                oid: ObjectId(i as u64),
                loc: Point::new(5.0 + rng.below(991) as f64, 5.0 + rng.below(991) as f64),
                vel: Velocity::new(1.0, 0.0),
                ts: Timestamp::from_secs(1),
            };
            prop_assert!(matches!(
                cluster.submit(&m).unwrap(),
                SubmitOutcome::Enqueued { .. }
            ));
            msgs.push(m);
        }
        let epoch_before = cluster.epoch();
        prop_assert_eq!(cluster.stats().updates, 0, "nothing may apply before the flush");
        prop_assert_eq!(cluster.ingest_stats().queued, n as u64);

        // Cross an epoch: a join or a leave, either of which publishes the
        // new membership *first* and then drains the queues under it.
        if rng.below(2) == 0 {
            cluster.add_shard().unwrap();
        } else {
            let ids = cluster.shard_ids();
            let victim = ids[rng.below(ids.len() as u64) as usize];
            cluster.remove_shard(victim).unwrap();
        }
        prop_assert_eq!(cluster.epoch(), epoch_before + 1);

        // Exactly once: every buffered update applied, none left, none doubled.
        let is = cluster.ingest_stats();
        prop_assert_eq!(is.queued, 0);
        prop_assert_eq!(is.flushed_updates, n as u64);
        prop_assert!(is.drain_flushes >= 1);
        prop_assert_eq!(is.backpressure + is.overload_shed, 0);
        prop_assert_eq!(cluster.stats().updates, n as u64);

        // ...and every one landed on its key's *current* rank-0 primary:
        // per-shard counters match the counts predicted by post-bump
        // routing, shard by shard (a departed victim absorbed nothing, so
        // the live shards account for the whole batch).
        let mut predicted = vec![0u64; cluster.shard_ids().len()];
        for m in &msgs {
            predicted[cluster.shard_for_point(&m.loc)] += 1;
        }
        let live: Vec<u64> = cluster.shard_stats().iter().map(|s| s.updates).collect();
        prop_assert_eq!(live, predicted);
    }
}
