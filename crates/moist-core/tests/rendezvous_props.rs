//! Property tests for rendezvous cell ownership — the minimal-remap
//! contract elastic membership rests on (vendored proptest):
//!
//! 1. **join** — adding one shard to an N-shard membership remaps at most
//!    ⌈cells/(N+1)⌉ plus statistical slack, and every remapped cell moves
//!    *to the joiner* (an exact structural property, not a bound);
//! 2. **leave** — removing one shard remaps exactly the departed shard's
//!    cells and nothing else;
//! 3. **order independence** — ownership is a function of the membership
//!    *set*, not the order the ids are listed in;
//! 4. **agreement** — [`ClusterScheduler::for_member`] slices form an
//!    exact partition that agrees with [`rendezvous_owner`], so routing
//!    and clustering can never disagree about a cell's home shard.

use moist_core::{rendezvous_owner, ClusterScheduler, MoistConfig};
use proptest::prelude::*;

/// A membership of 1–12 distinct shard ids drawn from a wide id space
/// (ids are never reused in the tier, so gaps and large values are the
/// norm after churn).
fn membership(rng: &mut TestRng, max_len: usize) -> Vec<u64> {
    let len = 1 + (rng.below(max_len as u64) as usize);
    let mut ids = Vec::with_capacity(len);
    while ids.len() < len {
        let id = rng.below(1 << 20);
        if !ids.contains(&id) {
            ids.push(id);
        }
    }
    ids
}

/// Fisher–Yates shuffle driven by the deterministic test RNG.
fn shuffled(rng: &mut TestRng, mut ids: Vec<u64>) -> Vec<u64> {
    for i in (1..ids.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        ids.swap(i, j);
    }
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn join_remaps_at_most_its_fair_share_and_only_to_the_joiner(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("join_remap", seed);
        let ids = membership(&mut rng, 12);
        let joiner = loop {
            let id = rng.below(1 << 20) + (1 << 20); // disjoint from members
            if !ids.contains(&id) {
                break id;
            }
        };
        let mut grown = ids.clone();
        grown.push(joiner);
        let cells: u64 = 1024;
        let n1 = grown.len() as u64;

        let mut remapped = 0u64;
        for cell in 0..cells {
            let before = rendezvous_owner(cell, &ids);
            let after = rendezvous_owner(cell, &grown);
            if before != after {
                remapped += 1;
                // Exact structural property: a cell only ever moves to the
                // joiner — the incumbents' weights did not change.
                prop_assert_eq!(after, joiner, "cell {} moved between incumbents", cell);
            }
        }
        // The joiner's fair share is cells/(N+1). The winner counts are
        // binomial-ish, so allow generous slack — but stay far below the
        // near-total remap a modular hash over the count would cause.
        let fair = cells.div_ceil(n1);
        let slack = fair / 2 + 32;
        prop_assert!(
            remapped <= fair + slack,
            "remapped {} of {} cells; fair share {} (+{} slack) with {} members",
            remapped, cells, fair, slack, n1
        );
    }

    #[test]
    fn leave_remaps_exactly_the_departed_shards_cells(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("leave_remap", seed);
        let mut ids = membership(&mut rng, 12);
        if ids.len() < 2 {
            ids.push(ids[0] + 1);
        }
        let departed = ids[rng.below(ids.len() as u64) as usize];
        let survivors: Vec<u64> = ids.iter().copied().filter(|&m| m != departed).collect();

        for cell in 0..1024u64 {
            let before = rendezvous_owner(cell, &ids);
            let after = rendezvous_owner(cell, &survivors);
            if before == departed {
                // The departed shard's cells land on some survivor.
                prop_assert!(survivors.contains(&after));
            } else {
                // Everyone else's cells do not move at all.
                prop_assert_eq!(after, before, "cell {} moved without cause", cell);
            }
        }
    }

    #[test]
    fn ownership_is_independent_of_membership_list_order(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("order_independence", seed);
        let ids = membership(&mut rng, 12);
        let reordered = shuffled(&mut rng, ids.clone());
        for cell in 0..512u64 {
            prop_assert_eq!(
                rendezvous_owner(cell, &ids),
                rendezvous_owner(cell, &reordered),
                "cell {} owner depends on list order", cell
            );
        }
    }

    #[test]
    fn scheduler_slices_partition_the_level_and_agree_with_routing(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("scheduler_agreement", seed);
        let ids = membership(&mut rng, 8);
        let cfg = MoistConfig {
            clustering_level: 4, // 256 cells
            ..MoistConfig::default()
        };
        let scheds: Vec<ClusterScheduler> = ids
            .iter()
            .map(|&m| ClusterScheduler::for_member(&cfg, m, &ids))
            .collect();
        let total: usize = scheds.iter().map(|s| s.owned_count()).sum();
        prop_assert_eq!(total, 256, "members {:?} must partition the level", ids);
        for cell in 0..256u64 {
            let winner = rendezvous_owner(cell, &ids);
            for (pos, sched) in scheds.iter().enumerate() {
                prop_assert_eq!(
                    sched.owns(cell),
                    ids[pos] == winner,
                    "cell {} ownership disagrees with routing", cell
                );
            }
        }
    }
}
