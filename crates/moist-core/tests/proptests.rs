//! Property-based tests of MOIST's core invariants, driven by arbitrary
//! update/cluster/query interleavings checked against a naive in-memory
//! oracle.
//!
//! The invariants (derived from §3.1–3.4):
//!
//! 1. **Role partition** — after any operation sequence, every seen object
//!    is exactly one of leader / follower; every follower's leader is a
//!    leader; every follower appears in its leader's Follower Info and in
//!    nobody else's.
//! 2. **Spatial index = leaders** — the Spatial Index Table holds exactly
//!    the leaders, each under the leaf cell of its last accepted location.
//! 3. **ε-bound** — a follower's served position never deviates from its
//!    last *reported* position by more than ε plus the leader's movement
//!    since (the school contract).
//! 4. **NN exactness over leaders** — leaders-only NN results equal brute
//!    force over the oracle's leader positions.

use moist_bigtable::{Bigtable, CostProfile, Session, Timestamp};
use moist_core::{
    apply_update, cluster_sweep, nn_query, LfRecord, MoistConfig, MoistTables, NnOptions, ObjectId,
    UpdateMessage, UpdateOutcome,
};
use moist_spatial::{Point, Velocity};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone)]
enum Op {
    Update {
        oid: u64,
        x: f64,
        y: f64,
        vx: f64,
        vy: f64,
        dt: f64,
    },
    Cluster,
}

fn op_strategy(objects: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        9 => (
            0..objects,
            0.0f64..1000.0,
            0.0f64..1000.0,
            -2.0f64..2.0,
            -2.0f64..2.0,
            0.1f64..5.0,
        )
            .prop_map(|(oid, x, y, vx, vy, dt)| Op::Update { oid, x, y, vx, vy, dt }),
        1 => Just(Op::Cluster),
    ]
}

struct Harness {
    tables: MoistTables,
    session: Session,
    cfg: MoistConfig,
    now: f64,
    /// Last *reported* (non-shed-or-shed) position per object.
    reported: HashMap<u64, (Point, f64)>,
}

impl Harness {
    fn new() -> Self {
        let store = Bigtable::new();
        let cfg = MoistConfig::default();
        let tables = MoistTables::create(&store, &cfg).unwrap();
        let session = store.session_with(CostProfile::free());
        Harness {
            tables,
            session,
            cfg,
            now: 0.0,
            reported: HashMap::new(),
        }
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::Update {
                oid,
                x,
                y,
                vx,
                vy,
                dt,
            } => {
                self.now += dt;
                let msg = UpdateMessage {
                    oid: ObjectId(*oid),
                    loc: Point::new(*x, *y),
                    vel: Velocity::new(*vx, *vy),
                    ts: Timestamp::from_secs_f64(self.now),
                };
                let out = apply_update(&mut self.session, &self.tables, &self.cfg, &msg).unwrap();
                match out {
                    UpdateOutcome::Shed
                    | UpdateOutcome::Registered
                    | UpdateOutcome::LeaderUpdated
                    | UpdateOutcome::Departed { .. } => {
                        self.reported.insert(*oid, (msg.loc, self.now));
                    }
                }
            }
            Op::Cluster => {
                self.now += 1.0;
                cluster_sweep(
                    &mut self.session,
                    &self.tables,
                    &self.cfg,
                    Timestamp::from_secs_f64(self.now),
                )
                .unwrap();
            }
        }
    }

    /// Invariants 1 and 2.
    fn check_structure(&mut self) -> Result<(), TestCaseError> {
        let ids: Vec<ObjectId> = self.reported.keys().map(|&o| ObjectId(o)).collect();
        let mut leaders: HashSet<u64> = HashSet::new();
        let mut followers: HashMap<u64, u64> = HashMap::new();
        for oid in &ids {
            match self.tables.lf(&mut self.session, *oid).unwrap() {
                Some(LfRecord::Leader { .. }) => {
                    leaders.insert(oid.0);
                }
                Some(LfRecord::Follower { leader, .. }) => {
                    followers.insert(oid.0, leader.0);
                }
                None => prop_assert!(false, "object {oid} lost its L/F record"),
            }
        }
        // Every follower's leader is a leader with a matching Follower Info
        // entry.
        for (&f, &l) in &followers {
            prop_assert!(
                leaders.contains(&l),
                "follower {f}'s leader {l} is not a leader"
            );
            let info = self
                .tables
                .followers(&mut self.session, ObjectId(l))
                .unwrap();
            prop_assert!(
                info.iter().any(|(o, _)| o.0 == f),
                "follower {f} missing from leader {l}'s Follower Info"
            );
        }
        // No follower appears in a *different* leader's Follower Info, and
        // leaders' Follower Info only lists actual followers of that leader.
        for &l in &leaders {
            for (o, _) in self
                .tables
                .followers(&mut self.session, ObjectId(l))
                .unwrap()
            {
                // Stale entries for objects that departed are deleted by
                // Algorithm 1 line 10; anything listed must follow l.
                if let Some(&actual) = followers.get(&o.0) {
                    prop_assert_eq!(
                        actual,
                        l,
                        "object listed under leader {} but follows {}",
                        l,
                        actual
                    );
                } else {
                    prop_assert!(
                        !leaders.contains(&o.0),
                        "leader {} listed as follower of {}",
                        o.0,
                        l
                    );
                }
            }
        }
        // Spatial index rows are exactly the leaders.
        let entries = self
            .tables
            .spatial_scan_cell(
                &mut self.session,
                moist_spatial::CellId::ROOT,
                self.cfg.space.leaf_level,
                None,
            )
            .unwrap();
        let indexed: HashSet<u64> = entries.iter().map(|e| e.oid.0).collect();
        prop_assert_eq!(indexed.len(), entries.len(), "duplicate spatial entries");
        prop_assert_eq!(&indexed, &leaders, "spatial index != leader set");
        // Each leader is filed under the leaf of its last accepted location.
        for e in &entries {
            let expected_leaf = self.cfg.space.leaf_cell(&e.record.loc).index;
            prop_assert_eq!(e.leaf_index, expected_leaf, "leader filed in wrong cell");
        }
        Ok(())
    }

    /// Invariant 4: leaders-only NN at an arbitrary level is exact.
    ///
    /// Exactness requires stored positions to be current (Algorithm 2
    /// prunes by *stored* cell distance; the paper's leaders re-file on
    /// every update so staleness is bounded by the update interval). The
    /// static-object property test below drives this with zero velocities;
    /// the moving-object test checks ordering/shape only.
    fn check_nn(&mut self, center: Point, level: u8) -> Result<(), TestCaseError> {
        let entries = self
            .tables
            .spatial_scan_cell(
                &mut self.session,
                moist_spatial::CellId::ROOT,
                self.cfg.space.leaf_level,
                None,
            )
            .unwrap();
        let at = Timestamp::from_secs_f64(self.now);
        let mut brute: Vec<(u64, f64)> = entries
            .iter()
            .map(|e| {
                let pos = e.record.loc.advance(e.record.vel, at.secs_since(e.ts));
                (e.oid.0, center.distance(&pos))
            })
            .collect();
        brute.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let k = 5.min(brute.len());
        let opts = NnOptions {
            include_followers: false,
            ..NnOptions::new(5, level)
        };
        let (nn, _) = nn_query(
            &mut self.session,
            &self.tables,
            &self.cfg,
            center,
            at,
            &opts,
        )
        .unwrap();
        prop_assert_eq!(nn.len(), k);
        // Compare distances (id ties can legitimately reorder).
        for (got, want) in nn.iter().zip(brute.iter()) {
            prop_assert!(
                (got.distance - want.1).abs() < 1e-6,
                "NN distance mismatch: {} vs {}",
                got.distance,
                want.1
            );
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn structural_invariants_hold_under_any_interleaving(
        ops in prop::collection::vec(op_strategy(12), 1..60),
        qx in 0.0f64..1000.0,
        qy in 0.0f64..1000.0,
        level in 2u8..8,
    ) {
        let mut h = Harness::new();
        for op in &ops {
            h.apply(op);
        }
        h.check_structure()?;
        // Moving objects: NN must be well-formed (sorted, deduplicated),
        // even though staleness-extrapolation can reorder near-ties.
        let at = Timestamp::from_secs_f64(h.now);
        let (nn, _) = nn_query(
            &mut h.session,
            &h.tables,
            &h.cfg,
            Point::new(qx, qy),
            at,
            &NnOptions::new(5, level),
        )
        .unwrap();
        prop_assert!(nn.windows(2).all(|w| w[0].distance <= w[1].distance));
        let mut ids: Vec<u64> = nn.iter().map(|n| n.oid.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), nn.len(), "duplicate neighbours");
    }

    #[test]
    fn nn_is_exact_for_static_objects(
        ops in prop::collection::vec(op_strategy(12), 1..60),
        qx in 0.0f64..1000.0,
        qy in 0.0f64..1000.0,
        level in 2u8..8,
    ) {
        let mut h = Harness::new();
        for op in &ops {
            // Zero the velocities: stored positions stay exact forever.
            match op {
                Op::Update { oid, x, y, dt, .. } => h.apply(&Op::Update {
                    oid: *oid,
                    x: *x,
                    y: *y,
                    vx: 0.0,
                    vy: 0.0,
                    dt: *dt,
                }),
                Op::Cluster => h.apply(op),
            }
        }
        h.check_nn(Point::new(qx, qy), level)?;
    }

    /// The ε contract: while an update is shed, the *served* position stays
    /// within ε of the reported one at the moment of the report.
    #[test]
    fn shed_updates_keep_served_positions_within_epsilon(
        positions in prop::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 2..8),
    ) {
        let mut h = Harness::new();
        // Two co-located, co-moving objects; cluster them into one school.
        let base = Point::new(positions[0].0, positions[0].1);
        for oid in [1u64, 2] {
            h.apply(&Op::Update {
                oid,
                x: base.x,
                y: base.y + oid as f64, // 1–2 units apart
                vx: 1.0,
                vy: 0.0,
                dt: 0.1,
            });
        }
        h.apply(&Op::Cluster);
        // Follower (whichever of the two it is) reports along the shared
        // trajectory; every shed report must be within ε of the estimate.
        let t0 = h.now;
        for step in 1..=5u64 {
            let dt = 1.0;
            let expected_x = base.x + (h.now + dt - t0) + 1.0; // v=1
            for oid in [1u64, 2] {
                let lf = h.tables.lf(&mut h.session, ObjectId(oid)).unwrap().unwrap();
                if !lf.is_leader() {
                    let msg = UpdateMessage {
                        oid: ObjectId(oid),
                        loc: Point::new(expected_x, base.y + oid as f64),
                        vel: Velocity::new(1.0, 0.0),
                        ts: Timestamp::from_secs_f64(h.now + dt),
                    };
                    let out =
                        apply_update(&mut h.session, &h.tables, &h.cfg, &msg).unwrap();
                    if out == UpdateOutcome::Shed {
                        // Served position = estimate; check ε bound.
                        if let LfRecord::Follower { leader, displacement, .. } = lf {
                            let (lts, lrec) = h
                                .tables
                                .latest_location(&mut h.session, leader)
                                .unwrap()
                                .unwrap();
                            let est = moist_core::estimated_location(
                                &lrec,
                                lts,
                                displacement,
                                msg.ts,
                            );
                            let err = est.distance(&msg.loc);
                            prop_assert!(
                                err <= h.cfg.epsilon + 1e-9,
                                "shed at error {err} > ε {} (step {step})",
                                h.cfg.epsilon
                            );
                        }
                    }
                }
            }
            h.now += dt;
        }
    }
}
