//! The intra-shard lock split, under fire.
//!
//! Shards sit behind `RwLock<MoistServer>`: query paths take `&self`
//! under the read guard, writes take the write guard. These tests pin
//! the contracts that refactor made:
//!
//! * read guards on one shard genuinely overlap (the old exclusive lock
//!   would deadlock the handshake);
//! * pinning a shard's write guard mid-`update_batch` delays that
//!   shard's readers but never wedges them, and other shards' readers
//!   keep flowing meanwhile;
//! * racing readers and writers account exactly: final `ServerStats`
//!   counters and hub op counts equal the single-threaded oracle, and
//!   virtual elapsed time matches up to interleaving noise;
//! * single-threaded, the per-call hub-seeded sessions are
//!   bit-identical to the old one-shared-clock design (pinned against a
//!   plain `Session` replay of the same ops) — the invariant that keeps
//!   fig13/fig16 outputs unchanged across the refactor.

use moist_bigtable::{Bigtable, Timestamp};
use moist_core::{
    apply_update, nn_query, FlagTuner, MoistCluster, MoistConfig, MoistServer, MoistTables,
    NnOptions, ObjectId, ServerStats, UpdateMessage, UpdateOutcome,
};
use moist_spatial::{Point, Rect, Velocity};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

const SHARDS: usize = 4;

fn tier_config() -> MoistConfig {
    MoistConfig {
        epsilon: 50.0,
        clustering_level: 3,
        cluster_interval_secs: 10.0,
        ..MoistConfig::default()
    }
}

fn msg(oid: u64, x: f64, y: f64, secs: f64) -> UpdateMessage {
    UpdateMessage {
        oid: ObjectId(oid),
        loc: Point::new(x, y),
        vel: Velocity::new(1.0, 0.0),
        ts: Timestamp::from_secs_f64(secs),
    }
}

/// Deterministic xorshift scatter of `n` objects over the paper map.
fn seed_objects(cluster: &MoistCluster, n: u64) {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for oid in 0..n {
        cluster
            .update(&msg(oid, next() * 1000.0, next() * 1000.0, 1.0))
            .unwrap();
    }
}

/// One representative point routed to each shard (deterministic sweep).
fn probe_points(cluster: &MoistCluster) -> Vec<Point> {
    let mut probe: Vec<Option<Point>> = vec![None; SHARDS];
    'sweep: for gx in 0..64 {
        for gy in 0..64 {
            let p = Point::new(gx as f64 * 15.5 + 8.0, gy as f64 * 15.5 + 8.0);
            let shard = cluster.shard_for_point(&p);
            probe[shard].get_or_insert(p);
            if probe.iter().all(Option::is_some) {
                break 'sweep;
            }
        }
    }
    probe
        .into_iter()
        .map(|p| p.expect("every shard owns some cell on the sweep grid"))
        .collect()
}

/// Two threads hold the *same shard's* read guard at the same time. The
/// handshake (each side waits for the other while still inside its
/// guard) deadlocks under an exclusive lock, so the 5 s timeout doubles
/// as the regression signal.
#[test]
fn read_guards_on_one_shard_overlap() {
    let store = Bigtable::new();
    let cluster = Arc::new(MoistCluster::new(&store, tier_config(), SHARDS).unwrap());
    seed_objects(&cluster, 64);

    let (a_in_tx, a_in_rx) = mpsc::channel::<()>();
    let (b_in_tx, b_in_rx) = mpsc::channel::<()>();

    let c1 = Arc::clone(&cluster);
    let t1 = std::thread::spawn(move || {
        c1.with_shard_read(0, |server| {
            a_in_tx.send(()).unwrap();
            // Stay inside the read guard until the second reader is in too.
            b_in_rx
                .recv_timeout(Duration::from_secs(5))
                .expect("second reader must enter the shard while we hold the read guard");
            server.stats()
        })
        .unwrap()
    });
    let c2 = Arc::clone(&cluster);
    let t2 = std::thread::spawn(move || {
        a_in_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("first reader never entered");
        c2.with_shard_read(0, |server| {
            b_in_tx.send(()).unwrap();
            server.stats()
        })
        .unwrap()
    });
    let s1 = t1.join().unwrap();
    let s2 = t2.join().unwrap();
    assert_eq!(s1, s2, "overlapping readers saw one consistent shard");
}

/// A writer pins shard 0's write guard mid-`update_batch` (the batch
/// apply plus a deliberate 150 ms hold, all inside `with_shard`). Eight
/// readers aimed at that shard all still complete, and while the guard
/// is held, a read on another shard finishes immediately.
#[test]
fn readers_survive_a_pinned_write_guard() {
    let store = Bigtable::new();
    let cluster = Arc::new(MoistCluster::new(&store, tier_config(), SHARDS).unwrap());
    seed_objects(&cluster, 256);
    let probes = probe_points(&cluster);
    let shard0_probe = probes[0];

    let writer_holds = Arc::new(AtomicBool::new(true));
    let (held_tx, held_rx) = mpsc::channel::<()>();

    let c_writer = Arc::clone(&cluster);
    let holds = Arc::clone(&writer_holds);
    let writer = std::thread::spawn(move || {
        let batch: Vec<UpdateMessage> = (1000..1064)
            .map(|oid| msg(oid, 10.0 + (oid - 1000) as f64 * 2.0, 10.0, 2.0))
            .collect();
        c_writer
            .with_shard(0, |server| {
                let out = server.update_batch(&batch).unwrap();
                held_tx.send(()).unwrap();
                // Pin the write guard well past the batch apply.
                std::thread::sleep(Duration::from_millis(150));
                out.len()
            })
            .unwrap();
        holds.store(false, Ordering::SeqCst);
    });

    held_rx.recv_timeout(Duration::from_secs(5)).unwrap();

    // While the guard is held: another shard's read guard is free. Query
    // that shard directly (a cluster-level query could scatter into
    // shard 0 and legitimately wait).
    let (nn_other, _) = cluster
        .with_shard_read(1, |s| {
            s.nn_at_level(probes[1], 3, Timestamp::from_secs(3), 5)
                .unwrap()
        })
        .unwrap();
    assert!(
        writer_holds.load(Ordering::SeqCst),
        "cross-shard read must finish while shard 0's write guard is still pinned \
         (150 ms hold outlived — lock split broken or machine pathologically slow)"
    );
    assert!(!nn_other.is_empty());

    // Readers aimed at the pinned shard: delayed, never wedged.
    let readers: Vec<_> = (0..8)
        .map(|i| {
            let c = Arc::clone(&cluster);
            std::thread::spawn(move || {
                let at = Timestamp::from_secs(3);
                if i % 2 == 0 {
                    let (nn, _) = c.nn(shard0_probe, 3, at).unwrap();
                    assert!(!nn.is_empty());
                } else {
                    let rect = Rect::new(
                        shard0_probe.x - 40.0,
                        shard0_probe.y - 40.0,
                        shard0_probe.x + 40.0,
                        shard0_probe.y + 40.0,
                    );
                    c.region(&rect, at, 200.0).unwrap();
                }
            })
        })
        .collect();
    for r in readers {
        r.join().expect("reader wedged behind the write guard");
    }
    writer.join().unwrap();
}

/// 4 racing writer threads (disjoint bands of the map, so update
/// outcomes are interleaving-independent), then 4 racing reader
/// threads; the same ops replayed single-threaded on a fresh tier are
/// the oracle. Counter totals and hub op counts must match *exactly*;
/// virtual elapsed time to interleaving noise (a racing writer observes
/// slightly different store row counts inside the index-navigation
/// charge term, and f64 addition reorders under the hub's CAS loop).
#[test]
fn racing_totals_equal_the_single_threaded_oracle() {
    const WRITERS: u64 = 4;
    const UPDATES_PER_WRITER: u64 = 100;
    const READERS: usize = 4;
    const QUERIES_PER_READER: usize = 40;

    // Writer `w` owns the horizontal band y = 30 + 250·w: bands sit in
    // distinct clustering cells 250 units apart (≫ ε = 50), so no
    // school ever couples two writers' objects and every update's
    // outcome depends only on its own thread's (fixed) order.
    fn spot(w: u64, i: u64) -> (f64, f64) {
        let x = 20.0 + ((i * 7) % 960) as f64;
        let y = 30.0 + w as f64 * 250.0;
        (x, y)
    }
    fn query_spot(r: usize, i: usize) -> (f64, f64) {
        spot(r as u64, (i * 3) as u64)
    }

    let run = |concurrent: bool| -> (ServerStats, u64, f64) {
        let store = Bigtable::new();
        let cluster = Arc::new(MoistCluster::new(&store, tier_config(), SHARDS).unwrap());
        let read = |c: &MoistCluster, x: f64, y: f64| {
            let shard = c.shard_for_point(&Point::new(x, y));
            // Fixed NN level: FLAG's cache races are exercised elsewhere;
            // this oracle wants structurally identical scans.
            c.with_shard_read(shard, |s| {
                s.nn_at_level(Point::new(x, y), 3, Timestamp::from_secs(2), 5)
                    .unwrap()
            })
            .unwrap();
        };
        if concurrent {
            let writers: Vec<_> = (0..WRITERS)
                .map(|w| {
                    let c = Arc::clone(&cluster);
                    std::thread::spawn(move || {
                        for i in 0..UPDATES_PER_WRITER {
                            let (x, y) = spot(w, i);
                            c.update(&msg(w * UPDATES_PER_WRITER + i, x, y, 1.0))
                                .unwrap();
                        }
                    })
                })
                .collect();
            for t in writers {
                t.join().unwrap();
            }
            let readers: Vec<_> = (0..READERS)
                .map(|r| {
                    let c = Arc::clone(&cluster);
                    std::thread::spawn(move || {
                        for i in 0..QUERIES_PER_READER {
                            let (x, y) = query_spot(r, i);
                            read(&c, x, y);
                        }
                    })
                })
                .collect();
            for t in readers {
                t.join().unwrap();
            }
        } else {
            for w in 0..WRITERS {
                for i in 0..UPDATES_PER_WRITER {
                    let (x, y) = spot(w, i);
                    cluster
                        .update(&msg(w * UPDATES_PER_WRITER + i, x, y, 1.0))
                        .unwrap();
                }
            }
            for r in 0..READERS {
                for i in 0..QUERIES_PER_READER {
                    let (x, y) = query_spot(r, i);
                    read(&cluster, x, y);
                }
            }
        }
        let ops: u64 = (0..SHARDS)
            .map(|i| {
                cluster
                    .with_shard_read(i, |s| s.meter_hub().op_count())
                    .unwrap()
            })
            .sum();
        let elapsed: f64 = cluster.shard_elapsed_us().iter().sum();
        (cluster.stats(), ops, elapsed)
    };

    let (racy_stats, racy_ops, racy_us) = run(true);
    let (oracle_stats, oracle_ops, oracle_us) = run(false);

    assert_eq!(racy_stats, oracle_stats, "racing counters drifted");
    assert!(racy_stats.balanced(), "{racy_stats:?}");
    assert_eq!(racy_stats.updates, WRITERS * UPDATES_PER_WRITER);
    assert_eq!(racy_stats.nn_queries, (READERS * QUERIES_PER_READER) as u64);
    assert_eq!(racy_ops, oracle_ops, "hub op counts must be exact");
    let rel = (racy_us - oracle_us).abs() / oracle_us.max(1.0);
    assert!(
        rel < 0.01,
        "racing elapsed {racy_us} vs oracle {oracle_us} drifted by {rel}"
    );
}

/// Determinism pin for the per-call metering: a single-threaded
/// workload through `MoistServer` (an ephemeral hub-seeded session per
/// call) lands on the *bit-identical* virtual time and op count of a
/// plain `Session` replaying the same store ops on one shared clock —
/// updates, FLAG tuning, NN scans and all.
#[test]
fn single_threaded_metering_is_bit_identical_to_one_shared_clock() {
    let cfg = tier_config();
    let drive = |server: &mut MoistServer| {
        for oid in 0..200u64 {
            let x = 30.0 + (oid * 13 % 940) as f64;
            let y = 30.0 + (oid * 29 % 940) as f64;
            server.update(&msg(oid, x, y, 1.0)).unwrap();
        }
        for q in 0..40u64 {
            let center = Point::new(25.0 + (q * 97 % 950) as f64, 25.0 + (q * 41 % 950) as f64);
            server.nn(center, 4, Timestamp::from_secs(2)).unwrap();
        }
    };

    // Server path: every call opens its own hub-seeded session.
    let store_a = Bigtable::new();
    let mut server = MoistServer::new(&store_a, cfg).unwrap();
    drive(&mut server);

    // Plain replay: one session, one clock, the same op sequence the
    // server paths issue (update apply; FLAG probe loop then NN scan
    // threaded through a single session, as `MoistServer::nn` does).
    let store_b = Bigtable::new();
    let tables = MoistTables::create(&store_b, &cfg).unwrap();
    let mut session = store_b.session();
    let mut tuner = FlagTuner::new(&cfg);
    let mut estimate = 0u64; // mirrors the server's object-count estimate
    for oid in 0..200u64 {
        let x = 30.0 + (oid * 13 % 940) as f64;
        let y = 30.0 + (oid * 29 % 940) as f64;
        let outcome = apply_update(&mut session, &tables, &cfg, &msg(oid, x, y, 1.0)).unwrap();
        if outcome == UpdateOutcome::Registered {
            estimate += 1;
        }
    }
    for q in 0..40u64 {
        let center = Point::new(25.0 + (q * 97 % 950) as f64, 25.0 + (q * 41 % 950) as f64);
        let at = Timestamp::from_secs(2);
        let level = tuner
            .best_level(&mut session, &tables, &cfg, &center, estimate.max(1), at)
            .unwrap();
        nn_query(
            &mut session,
            &tables,
            &cfg,
            center,
            at,
            &NnOptions::new(4, level),
        )
        .unwrap();
    }

    assert_eq!(
        server.elapsed_us().to_bits(),
        session.elapsed_us().to_bits(),
        "hub-metered server drifted from the one-clock replay: {} vs {}",
        server.elapsed_us(),
        session.elapsed_us()
    );
    assert_eq!(
        server.meter_hub().op_count(),
        session.op_count(),
        "op counts must match exactly"
    );

    // And the run reproduces: a second identical pass lands on the same
    // bits again.
    let store_c = Bigtable::new();
    let mut server2 = MoistServer::new(&store_c, cfg).unwrap();
    drive(&mut server2);
    assert_eq!(
        server.elapsed_us().to_bits(),
        server2.elapsed_us().to_bits()
    );
    assert_eq!(
        server.meter_hub().op_count(),
        server2.meter_hub().op_count()
    );
}
