//! Failure injection: corrupted stored values, schema drift and hostile
//! inputs must surface as typed errors, never panics, and must not corrupt
//! unrelated state.

use moist_bigtable::{Bigtable, CostProfile, Mutation, RowKey, Timestamp};
use moist_core::{
    apply_update, nn_query, MoistConfig, MoistError, MoistTables, NnOptions, ObjectId,
    UpdateMessage,
};
use moist_spatial::{Point, Velocity};
use std::sync::Arc;

fn setup() -> (
    Arc<Bigtable>,
    MoistTables,
    moist_bigtable::Session,
    MoistConfig,
) {
    let store = Bigtable::new();
    let cfg = MoistConfig::default();
    let tables = MoistTables::create(&store, &cfg).unwrap();
    let session = store.session_with(CostProfile::free());
    (store, tables, session, cfg)
}

fn msg(oid: u64, x: f64, y: f64) -> UpdateMessage {
    UpdateMessage {
        oid: ObjectId(oid),
        loc: Point::new(x, y),
        vel: Velocity::new(1.0, 0.0),
        ts: Timestamp::from_secs(1),
    }
}

#[test]
fn corrupted_lf_record_is_a_codec_error_not_a_panic() {
    let (_store, tables, mut s, cfg) = setup();
    apply_update(&mut s, &tables, &cfg, &msg(1, 100.0, 100.0)).unwrap();
    // Corrupt object 1's L/F record with garbage bytes.
    tables
        .affiliation
        .mutate_row(
            &RowKey::from_u64(1),
            &[Mutation::put(
                "lf",
                "lf",
                Timestamp::from_secs(2),
                vec![0xFF, 0x00, 0x13],
            )],
        )
        .unwrap();
    let err = apply_update(&mut s, &tables, &cfg, &msg(1, 101.0, 100.0)).unwrap_err();
    assert!(matches!(err, MoistError::Codec(_)), "got {err:?}");
    // Other objects keep working.
    apply_update(&mut s, &tables, &cfg, &msg(2, 200.0, 200.0)).unwrap();
}

#[test]
fn corrupted_spatial_record_fails_queries_cleanly() {
    let (_store, tables, mut s, cfg) = setup();
    apply_update(&mut s, &tables, &cfg, &msg(1, 100.0, 100.0)).unwrap();
    // Overwrite the spatial row's record with a short buffer.
    let leaf = cfg.space.leaf_cell(&Point::new(100.0, 100.0)).index;
    tables
        .spatial
        .mutate_row(
            &RowKey::composite(leaf, 1),
            &[Mutation::put(
                "id",
                "r",
                Timestamp::from_secs(2),
                vec![1, 2, 3],
            )],
        )
        .unwrap();
    let err = nn_query(
        &mut s,
        &tables,
        &cfg,
        Point::new(100.0, 100.0),
        Timestamp::from_secs(2),
        &NnOptions::new(1, 4),
    )
    .unwrap_err();
    assert!(matches!(err, MoistError::Codec(_)));
}

#[test]
fn corrupted_follower_displacement_is_detected() {
    let (_store, tables, mut s, cfg) = setup();
    apply_update(&mut s, &tables, &cfg, &msg(1, 100.0, 100.0)).unwrap();
    // Plant a malformed Follower Info column on the leader's row.
    tables
        .affiliation
        .mutate_row(
            &RowKey::from_u64(1),
            &[Mutation::put(
                "followers",
                "00000000000000ff",
                Timestamp::from_secs(2),
                vec![9u8; 5], // too short for a displacement
            )],
        )
        .unwrap();
    let err = tables.followers(&mut s, ObjectId(1)).unwrap_err();
    assert!(matches!(err, MoistError::Codec(_)));
}

#[test]
fn malformed_follower_qualifier_is_detected() {
    let (_store, tables, mut s, cfg) = setup();
    apply_update(&mut s, &tables, &cfg, &msg(1, 100.0, 100.0)).unwrap();
    tables
        .affiliation
        .mutate_row(
            &RowKey::from_u64(1),
            &[Mutation::put(
                "followers",
                "not-hex!",
                Timestamp::from_secs(2),
                moist_core::codec::encode_displacement(moist_spatial::Displacement::ZERO).to_vec(),
            )],
        )
        .unwrap();
    let err = tables.followers(&mut s, ObjectId(1)).unwrap_err();
    assert!(matches!(err, MoistError::Codec(_)));
}

#[test]
fn non_finite_inputs_rejected_everywhere() {
    let (_store, tables, mut s, cfg) = setup();
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let m = UpdateMessage {
            oid: ObjectId(1),
            loc: Point::new(bad, 0.0),
            vel: Velocity::ZERO,
            ts: Timestamp::from_secs(1),
        };
        assert!(apply_update(&mut s, &tables, &cfg, &m).is_err());
        let m = UpdateMessage {
            oid: ObjectId(1),
            loc: Point::new(0.0, 0.0),
            vel: Velocity::new(0.0, bad),
            ts: Timestamp::from_secs(1),
        };
        assert!(apply_update(&mut s, &tables, &cfg, &m).is_err());
    }
    // Nothing was registered by the rejected updates.
    assert!(tables.lf(&mut s, ObjectId(1)).unwrap().is_none());
}

#[test]
fn far_out_of_bounds_locations_are_clamped_not_lost() {
    let (_store, tables, mut s, cfg) = setup();
    // GPS glitches far outside the map still index (clamped to the border).
    apply_update(&mut s, &tables, &cfg, &msg(1, -5000.0, 90210.0)).unwrap();
    let (nn, _) = nn_query(
        &mut s,
        &tables,
        &cfg,
        Point::new(0.0, 1000.0),
        Timestamp::from_secs(1),
        &NnOptions::new(1, 4),
    )
    .unwrap();
    assert_eq!(nn.len(), 1);
    assert_eq!(nn[0].oid, ObjectId(1));
}

#[test]
fn dropped_table_surfaces_as_store_error() {
    let (store, tables, mut s, cfg) = setup();
    apply_update(&mut s, &tables, &cfg, &msg(1, 100.0, 100.0)).unwrap();
    store.drop_table(moist_core::table_names::LOCATION).unwrap();
    // Existing handles still work (the Arc keeps the data)…
    apply_update(&mut s, &tables, &cfg, &msg(1, 101.0, 100.0)).unwrap();
    // …but re-opening fails loudly.
    match MoistTables::open(&store) {
        Err(MoistError::Store(_)) => {}
        Err(other) => panic!("wrong error kind: {other}"),
        Ok(_) => panic!("open must fail after drop"),
    }
}
