//! # moist
//!
//! A from-scratch, production-quality reproduction of **MOIST: A Scalable
//! and Parallel Moving Object Indexer with School Tracking** (Jiang, Bao,
//! Chang, Li — PVLDB 5(12), 2012), including every substrate the paper
//! builds on.
//!
//! This facade re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`spatial`] | `moist-spatial` | Hilbert/Z curves, hierarchical cells, the six-face sphere mapping (§3.2) |
//! | [`bigtable`] | `moist-bigtable` | BigTable-semantics store + calibrated cost model (§3.1) |
//! | [`core`] | `moist-core` | object schools, Algorithm 1 updates, clustering, NN search, FLAG, the sharded `MoistCluster` front-end tier with rendezvous-hashed cell ownership and live shard join/leave (§3.3–3.4, §4.3.3) |
//! | [`archive`] | `moist-archive` | PPP parallel ping-pong aged-data archiving (§3.5–3.6) |
//! | [`baselines`] | `moist-baselines` | Bx-tree, static & dynamic clustering comparators (§2) |
//! | [`workload`] | `moist-workload` | the §4.1 road-network and uniform workloads, client drivers |
//!
//! ## Quickstart
//!
//! ```
//! use moist::bigtable::{Bigtable, Timestamp};
//! use moist::core::{MoistConfig, MoistServer, ObjectId, UpdateMessage};
//! use moist::spatial::{Point, Velocity};
//!
//! let store = Bigtable::new();
//! let mut server = MoistServer::new(&store, MoistConfig::default())?;
//!
//! // A taxi reports its position.
//! server.update(&UpdateMessage {
//!     oid: ObjectId(1),
//!     loc: Point::new(420.0, 500.0),
//!     vel: Velocity::new(1.8, 0.0),
//!     ts: Timestamp::from_secs(10),
//! })?;
//!
//! // A customer asks for the nearest taxi.
//! let (neighbors, _) = server.nn(Point::new(400.0, 500.0), 1, Timestamp::from_secs(11))?;
//! assert_eq!(neighbors[0].oid, ObjectId(1));
//! # Ok::<(), moist::core::MoistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use moist_archive as archive;
pub use moist_baselines as baselines;
pub use moist_bigtable as bigtable;
pub use moist_core as core;
pub use moist_spatial as spatial;
pub use moist_workload as workload;
