//! Shared harness for the figure-reproduction benchmarks.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the MOIST
//! paper (see DESIGN.md's experiment index). This library provides the
//! common pieces: result tables, JSON output, cost-profile presets for the
//! comparators, and the multi-server capacity model.

#![warn(missing_docs)]

use moist::bigtable::CostProfile;
use serde::Serialize;
use std::io::Write as _;
use std::path::PathBuf;

/// One plotted series: label plus `(x, y)` points.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }
}

/// A figure's worth of series, printable and dumpable.
#[derive(Debug, Clone, Serialize)]
pub struct Figure {
    /// Figure id, e.g. `"fig09a"`.
    pub id: String,
    /// Human title (the paper's caption).
    pub title: String,
    /// Axis names.
    pub x_label: String,
    /// Axis names.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn add(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Prints the figure as an aligned text table (x column + one column
    /// per series).
    pub fn print(&self) {
        println!("\n=== {} — {} ===", self.id, self.title);
        print!("{:>14}", self.x_label);
        for s in &self.series {
            print!("  {:>18}", truncate(&s.label, 18));
        }
        println!("    ({})", self.y_label);
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| p.0).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            print!("{x:>14.3}");
            for s in &self.series {
                match s.points.get(i) {
                    Some(&(_, y)) => print!("  {y:>18.3}"),
                    None => print!("  {:>18}", "-"),
                }
            }
            println!();
        }
    }

    /// Writes the figure as JSON under `bench_results/<id>.json` (relative
    /// to the workspace root) so EXPERIMENTS.md tables can be regenerated.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(&path)?;
        let json = serde_json::to_string_pretty(self).expect("figure serialises");
        f.write_all(json.as_bytes())?;
        println!("[saved {}]", path.display());
        Ok(path)
    }
}

/// Whether the current invocation asked for smoke mode (`--smoke` on the
/// command line or `MOIST_SMOKE=1`): tiny populations and few ticks, for
/// CI runs that only check the bins still work and archive their JSON.
///
/// Bins in smoke mode save under a `<id>_smoke` figure id so quick runs
/// never clobber full-scale results in `bench_results/`.
pub fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("MOIST_SMOKE")
            .map(|v| v == "1")
            .unwrap_or(false)
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

/// `bench_results/` at the workspace root (falls back to CWD).
///
/// `MOIST_BENCH_RESULTS_DIR` overrides the location entirely — CI uses it
/// to write the extra median-of-3 smoke runs of the interleaving-sensitive
/// figures into scratch directories instead of clobbering the main run.
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("MOIST_BENCH_RESULTS_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two levels up.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir)
            .parent()
            .and_then(|p| p.parent())
            .map(|p| p.join("bench_results"))
            .unwrap_or_else(|| PathBuf::from("bench_results")),
        Err(_) => PathBuf::from("bench_results"),
    }
}

/// Cost profile of the disk-based B+-tree testbed the Bx-tree numbers in
/// the paper come from (Chen et al.'s benchmark, the paper's ref. 6): every index operation
/// is a buffered disk-page access, far costlier than a BigTable memtable
/// op. Calibrated so one Bx update (delete + insert) lands near the
/// ~0.3 ms / ≈3k QPS the paper quotes for that benchmark's hardware.
pub fn disk_btree_profile() -> CostProfile {
    CostProfile {
        rpc_base_us: 140.0,
        index_level_us: 1.2,
        read_row_us: 20.0,
        mutation_us: 12.0,
        scan_row_us: 4.0,
        batch_row_us: 10.0,
        disk_read_us: 2500.0,
        byte_us: 0.004,
        wal_append_us: 4.0,
        wal_fsync_us: 220.0,
        wal_replay_us: 2.0,
    }
}

/// Aggregate write capacity of the shared store, ops per virtual second.
///
/// The paper's BigTable quota caps how far multi-server deployments scale:
/// 5 servers stay under it (near-linear speedup, Fig. 13b), 10 servers
/// saturate it around 60k updates/s with visible instability (Fig. 13c).
pub const STORE_WRITE_CAPACITY_OPS: f64 = 62_000.0;

/// Applies the shared-capacity model to per-server demand for one second of
/// virtual time: returns `(served, failed)` aggregate ops.
///
/// Below capacity everything is served. Above it, the store serves the
/// capacity (with a deterministic ±8% wobble — overload makes BigTable
/// throughput "not very stable over time", §4.3.3) and the excess fails.
pub fn capacity_step(demand_ops: f64, second: u64, seed: u64) -> (f64, f64) {
    if demand_ops <= STORE_WRITE_CAPACITY_OPS {
        return (demand_ops, 0.0);
    }
    // Deterministic wobble from a splitmix-style hash of (second, seed).
    let mut z = second
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seed);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let unit = ((z >> 11) as f64) / (1u64 << 53) as f64; // [0,1)
    let wobble = 0.92 + 0.16 * unit; // [0.92, 1.08)
    let served = (STORE_WRITE_CAPACITY_OPS * wobble).min(demand_ops);
    (served, demand_ops - served)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_printing_and_saving_roundtrip() {
        let mut fig = Figure::new("test_fig", "a test", "x", "y");
        let mut s = Series::new("s1");
        s.push(1.0, 2.0);
        s.push(2.0, 4.0);
        fig.add(s);
        fig.print();
        let path = fig.save().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"test_fig\""));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn disk_btree_profile_is_much_slower_per_update() {
        let bx = disk_btree_profile();
        let bt = CostProfile::default();
        // One Bx update = delete + insert.
        let bx_update = 2.0 * bx.write_us(1_000_000, 1, 40);
        let bt_update = bt.point_read_us(1_000_000, 24, false)
            + bt.write_us(1_000_000, 1, 56)
            + bt.batch_write_us(2, 2, 80);
        assert!(bx_update > 1.8 * bt_update, "{bx_update} vs {bt_update}");
        let qps = 1e6 / bx_update;
        assert!(qps > 2000.0 && qps < 4500.0, "Bx calibration off: {qps}");
    }

    #[test]
    fn capacity_model_caps_and_wobbles() {
        let (ok, bad) = capacity_step(40_000.0, 3, 1);
        assert_eq!(ok, 40_000.0);
        assert_eq!(bad, 0.0);
        let (ok1, bad1) = capacity_step(85_000.0, 3, 1);
        assert!(ok1 < 80_000.0 && ok1 > 60_000.0);
        assert!(bad1 > 0.0);
        // Deterministic per (second, seed); varies across seconds.
        let (ok2, _) = capacity_step(85_000.0, 3, 1);
        assert_eq!(ok1, ok2);
        let (ok3, _) = capacity_step(85_000.0, 4, 1);
        assert_ne!(ok1, ok3);
    }
}
