//! Figure 11 — "Influence of clustering: improvement of nearest neighbor
//! search QPS" (§4.2.2).
//!
//! Two settings share a 20k-object population starting at 1k leaders:
//! departures grow the leader count linearly to 20k in 30 s (setting A,
//! highly dynamic) or 60 s (setting B). Clustering at interval `T`
//! resets the leader count to 1k but consumes server time. NN QPS over a
//! fixed horizon is plotted against `T`; the horizontal baseline is
//! "no clustering".
//!
//! NN cost per leader count and clustering latency per pre-leader count are
//! *measured* on the real index (not assumed); the timeline integration is
//! the only modelled part.

use moist::bigtable::{Bigtable, CostProfile, Timestamp};
use moist::core::{
    cluster_cell, LfRecord, LocationRecord, MoistConfig, MoistTables, NnOptions, ObjectId,
};
use moist::spatial::{Point, Velocity};
use moist_bench::{Figure, Series};

/// Loads `n` uniform static leaders and returns store + tables.
fn load(n: usize, cfg: &MoistConfig) -> (std::sync::Arc<Bigtable>, MoistTables) {
    let store = Bigtable::new();
    let tables = MoistTables::create(&store, cfg).expect("tables");
    let mut s = store.session_with(CostProfile::free());
    let mut state = 0xFACE_FEED_u64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let ts = Timestamp::from_secs(1);
    for i in 0..n {
        let loc = Point::new(rnd() * 1000.0, rnd() * 1000.0);
        let vel = Velocity::new(rnd() * 2.0 - 1.0, rnd() * 2.0 - 1.0);
        let leaf = cfg.space.leaf_cell(&loc).index;
        let rec = LocationRecord {
            loc,
            vel,
            leaf_index: leaf,
        };
        tables
            .spatial_insert(&mut s, leaf, ObjectId(i as u64), &rec, ts)
            .expect("insert");
        tables
            .set_lf(
                &mut s,
                ObjectId(i as u64),
                &LfRecord::Leader {
                    since_us: 0,
                    last_leaf: leaf,
                },
                ts,
            )
            .expect("lf");
    }
    (store, tables)
}

/// Measures the average NN-query cost (µs) on an index with `leaders`
/// leaders, at the level tuned for the *clustered* (1k-leader) population —
/// fixed across the sweep, exactly the regime Figure 11 studies: when
/// departures inflate the leader count, every query pays for the extra
/// rows until the next clustering.
fn measure_nn_cost_us(leaders: usize, cfg: &MoistConfig) -> f64 {
    let (store, tables) = load(leaders, cfg);
    let mut s = store.session();
    let level = 3u8; // σ-appropriate for 1k leaders on this map
    let mut state = 0xBEEF_u64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let queries = 50;
    let before = s.elapsed_us();
    for _ in 0..queries {
        let q = Point::new(rnd() * 1000.0, rnd() * 1000.0);
        moist::core::nn_query(
            &mut s,
            &tables,
            cfg,
            q,
            Timestamp::from_secs(1),
            &NnOptions::new(10, level),
        )
        .expect("nn");
    }
    (s.elapsed_us() - before) / queries as f64
}

/// Measures one clustering pass over the whole map at `pre` leaders (µs).
fn measure_cluster_cost_us(pre: usize, cfg: &MoistConfig) -> f64 {
    let (store, tables) = load(pre, cfg);
    let mut s = store.session();
    let mut total = 0.0;
    for index in 0..moist::spatial::cells_at_level(cfg.clustering_level) {
        let cell = moist::spatial::CellId {
            level: cfg.clustering_level,
            index,
        };
        let r = cluster_cell(&mut s, &tables, cfg, cell, Timestamp::from_secs(2)).expect("cluster");
        total += r.total_us();
    }
    total
}

/// Piecewise-linear interpolation over measured (x, cost) points.
fn interp(points: &[(f64, f64)], x: f64) -> f64 {
    if x <= points[0].0 {
        return points[0].1;
    }
    for w in points.windows(2) {
        if x <= w[1].0 {
            let t = (x - w[0].0) / (w[1].0 - w[0].0);
            return w[0].1 + t * (w[1].1 - w[0].1);
        }
    }
    points.last().expect("non-empty").1
}

fn main() {
    let cfg = MoistConfig {
        delta_m: 4.0, // aggressive merging: clustering resets to ~1k leaders
        ..MoistConfig::default()
    };
    // Measured cost curves.
    let leader_counts = [1_000usize, 2_000, 5_000, 10_000, 20_000];
    let nn_cost: Vec<(f64, f64)> = leader_counts
        .iter()
        .map(|&n| (n as f64, measure_nn_cost_us(n, &cfg)))
        .collect();
    let cluster_cost: Vec<(f64, f64)> = leader_counts
        .iter()
        .map(|&n| (n as f64, measure_cluster_cost_us(n, &cfg)))
        .collect();
    println!("measured NN cost (leaders -> µs/query): {nn_cost:?}");
    println!("measured clustering cost (leaders -> µs/pass): {cluster_cost:?}");

    let horizon = 120.0f64;
    let base_leaders = 1_000.0f64;
    let max_leaders = 20_000.0f64;

    // Timeline integration: leaders grow at `growth`/s; clustering every T
    // resets them to base and consumes cluster time.
    let run = |growth_secs: f64, interval: Option<f64>| -> f64 {
        let growth = (max_leaders - base_leaders) / growth_secs;
        let mut leaders = match interval {
            Some(_) => base_leaders,
            None => max_leaders, // baseline: never clustered, saturated
        };
        let mut queries = 0.0f64;
        let mut next_cluster = interval.unwrap_or(f64::INFINITY);
        let dt = 0.1;
        let mut t = 0.0;
        let mut busy_until = 0.0f64;
        while t < horizon {
            if t >= next_cluster {
                let cost_s = interp(&cluster_cost, leaders) / 1e6;
                busy_until = t + cost_s;
                leaders = base_leaders;
                next_cluster += interval.expect("interval set");
            }
            if t >= busy_until {
                let cost_s = interp(&nn_cost, leaders) / 1e6;
                queries += dt / cost_s;
            }
            if interval.is_some() {
                leaders = (leaders + growth * dt).min(max_leaders);
            }
            t += dt;
        }
        queries / horizon
    };

    let mut fig = Figure::new(
        "fig11",
        "NN QPS vs clustering interval (A: 1k->20k in 30 s; B: in 60 s)",
        "cluster interval (s)",
        "NN QPS",
    );
    let intervals = [0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 15.0, 30.0, 60.0, 120.0];
    let mut series_a = Series::new("setting A (30 s growth)");
    let mut series_b = Series::new("setting B (60 s growth)");
    let mut baseline = Series::new("no clustering");
    let base_qps = run(30.0, None);
    for &t in &intervals {
        series_a.push(t, run(30.0, Some(t)));
        series_b.push(t, run(60.0, Some(t)));
        baseline.push(t, base_qps);
    }
    fig.add(series_a);
    fig.add(series_b);
    fig.add(baseline);
    fig.print();
    fig.save().expect("save");

    // The paper's qualitative claims, checked mechanically:
    let best = |s: &Series| {
        s.points
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("points")
    };
    let (ta, qa) = best(&fig.series[0]);
    let (tb, qb) = best(&fig.series[1]);
    println!("\noptimal interval: A = {ta}s ({qa:.0} QPS), B = {tb}s ({qb:.0} QPS)");
    println!("baseline (no clustering): {base_qps:.0} QPS");
    println!(
        "clustering speedup at optimum: A {:.1}x, B {:.1}x over baseline",
        qa / base_qps,
        qb / base_qps
    );
}
