//! Figure 17 (repo extension) — replicated cell ownership: read
//! throughput vs replica factor, and follower-promotion latency on a
//! shard kill.
//!
//! The paper's front-end tier gives every clustering cell exactly one
//! owner, so a cell that draws most of the *queries* — a business
//! center at rush hour, §3.4.2's FLAG observation again — pins whichever
//! shard wins it: that shard's read queue is the whole tier's read
//! throughput. Because MOIST keeps all state in the shared store,
//! replication is free of write amplification: the rendezvous top-`k`
//! shards of a cell can all serve its reads (updates and clustering stay
//! on the rank-0 primary), and when the primary dies the rank-1 follower
//! — already warm on the cell's reads — adopts its deadlines instantly.
//!
//! This bin drives the worst case the single-owner tier admits: two
//! business centers whose clustering cells **rendezvous-hash to the same
//! primary** (the hot spots are probed deterministically per shard
//! count, so the collision is by construction, not luck). The update
//! stream stays uniform; the query stream concentrates on the two hot
//! cells. Per `shards × read/write mix × replica factor k`, identically
//! seeded stores report:
//!
//! * **read QPS** — hot-mix NN queries served per busiest-shard virtual
//!   second (`reads / max_elapsed_us`): the client-visible read ceiling,
//!   deterministic because the driver is single-threaded and all costs
//!   are virtual;
//! * **k=2 read gain** — that QPS over the k=1 run's on the same store
//!   seeds: the figure's headline;
//! * **promotion latency** — at k≥2 the measured run ends with a kill of
//!   the hot primary: wall-clock µs from `remove_shard` to the first
//!   successful post-kill NN on a hot center (labelled `(noisy)` — wall
//!   clock is not gate-worthy), plus the deterministic count of keys
//!   instantly promoted.
//!
//! The full run asserts the acceptance bars at the largest fleet on the
//! 90/10 mix: **k=2 read QPS ≥ 2× k=1** (the two hot cells' replica
//! sets overlap only at the shared primary, so reads spread over ≥ 3
//! shards), promotions cover every key the victim owned, and the
//! post-kill probe succeeds immediately — zero read downtime.

use moist::bigtable::{Bigtable, Timestamp};
use moist::core::{MoistCluster, MoistConfig, ObjectId, UpdateMessage};
use moist::spatial::{Point, Velocity};
use moist_bench::{smoke_mode, Figure, Series};
use std::time::Instant;

struct Scale {
    shard_counts: Vec<usize>,
    /// Replica factors swept (1 is the single-owner baseline).
    replica_factors: Vec<usize>,
    /// Read fraction of the measured operation mix.
    read_mixes: Vec<f64>,
    objects: u64,
    warmup_secs: u64,
    measure_secs: u64,
    ops_per_sec: u64,
}

impl Scale {
    fn full() -> Self {
        Scale {
            shard_counts: vec![4, 10],
            replica_factors: vec![1, 2, 3],
            read_mixes: vec![0.5, 0.9],
            objects: 3_000,
            warmup_secs: 30,
            measure_secs: 100,
            ops_per_sec: 150,
        }
    }

    fn smoke() -> Self {
        Scale {
            shard_counts: vec![4],
            replica_factors: vec![1, 2],
            read_mixes: vec![0.9],
            objects: 600,
            warmup_secs: 20,
            measure_secs: 40,
            ops_per_sec: 60,
        }
    }
}

fn config() -> MoistConfig {
    MoistConfig {
        epsilon: 50.0,
        delta_m: 2.0,
        clustering_level: 3,
        cluster_interval_secs: 10.0,
        ..MoistConfig::default()
    }
}

/// Deterministic xorshift stream.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Candidate business-center locations, each at the center of a distinct
/// level-3 clustering cell (125-unit cells on the 1000² world).
const CANDIDATE_SPOTS: &[(f64, f64)] = &[
    (187.5, 187.5),
    (687.5, 312.5),
    (437.5, 812.5),
    (62.5, 562.5),
    (937.5, 62.5),
    (312.5, 937.5),
    (812.5, 687.5),
    (562.5, 437.5),
    (62.5, 62.5),
    (937.5, 937.5),
    (187.5, 687.5),
    (687.5, 62.5),
];

/// Picks two candidate cells owned by the *same* primary at this shard
/// count — the single-owner tier's worst case, found by probing a
/// throwaway (empty) cluster. Rendezvous hashing is deterministic, so
/// the collision reproduces run to run; with 12 candidates a colliding
/// pair exists at every fleet size we sweep (asserted, not assumed).
fn colliding_hot_spots(shards: usize) -> ((f64, f64), (f64, f64)) {
    let store = Bigtable::new();
    let probe = MoistCluster::builder(&store, config())
        .shards(shards)
        .build()
        .expect("probe cluster");
    for (i, &a) in CANDIDATE_SPOTS.iter().enumerate() {
        for &b in &CANDIDATE_SPOTS[i + 1..] {
            let pa = probe.shard_for_point(&Point::new(a.0, a.1));
            let pb = probe.shard_for_point(&Point::new(b.0, b.1));
            if pa == pb {
                return (a, b);
            }
        }
    }
    panic!("no two candidate cells share a primary at {shards} shards");
}

/// One update of the stream: mostly uniform (the write load spreads over
/// the fleet, as fig14's mixed workload does), with a slice refreshing
/// the hot-cell populations so their schools stay live.
fn next_update(rng: &mut Rng, objects: u64, spots: &[(f64, f64)], at_secs: f64) -> UpdateMessage {
    let hot = rng.next() < 0.3;
    let (oid, x, y) = if hot {
        let spot = usize::from(rng.next() < 0.5);
        let (cx, cy) = spots[spot];
        let pool = objects * 3 / 10 / spots.len() as u64;
        let oid = spot as u64 * pool + (rng.next() * pool as f64) as u64;
        (
            oid,
            cx + rng.next() * 40.0 - 20.0,
            cy + rng.next() * 40.0 - 20.0,
        )
    } else {
        let pool = objects * 4 / 10;
        let oid = objects * 6 / 10 + (rng.next() * pool as f64) as u64;
        (oid, 5.0 + rng.next() * 990.0, 5.0 + rng.next() * 990.0)
    };
    UpdateMessage {
        oid: ObjectId(oid),
        loc: Point::new(x, y),
        vel: Velocity::ZERO,
        ts: Timestamp::from_secs_f64(at_secs),
    }
}

/// One query center of the stream: 90% on the two business centers, the
/// rest uniform background reads.
fn next_query_center(rng: &mut Rng, spots: &[(f64, f64)]) -> Point {
    if rng.next() < 0.9 {
        let spot = usize::from(rng.next() < 0.5);
        let (cx, cy) = spots[spot];
        Point::new(cx + rng.next() * 40.0 - 20.0, cy + rng.next() * 40.0 - 20.0)
    } else {
        Point::new(5.0 + rng.next() * 990.0, 5.0 + rng.next() * 990.0)
    }
}

/// Registers the population: the hot pools jittered around their
/// business centers, the rest uniform (NN queries anywhere find
/// neighbours).
fn seed(cluster: &MoistCluster, rng: &mut Rng, objects: u64, spots: &[(f64, f64)]) {
    for oid in 0..objects {
        let t = oid as f64 / objects as f64;
        let pool = objects * 3 / 10 / spots.len() as u64;
        let (x, y) = if oid < pool {
            let (cx, cy) = spots[0];
            (cx + rng.next() * 40.0 - 20.0, cy + rng.next() * 40.0 - 20.0)
        } else if oid < 2 * pool {
            let (cx, cy) = spots[1];
            (cx + rng.next() * 40.0 - 20.0, cy + rng.next() * 40.0 - 20.0)
        } else {
            (5.0 + rng.next() * 990.0, 5.0 + rng.next() * 990.0)
        };
        cluster
            .update(&UpdateMessage {
                oid: ObjectId(oid),
                loc: Point::new(x, y),
                vel: Velocity::ZERO,
                ts: Timestamp::from_secs_f64(t),
            })
            .expect("seed update");
    }
}

/// Drives the read/write mix for `[from, to)` virtual seconds, ticking
/// clustering once per second. Returns the number of NN reads issued.
fn drive(
    cluster: &MoistCluster,
    rng: &mut Rng,
    scale: &Scale,
    spots: &[(f64, f64)],
    read_mix: f64,
    from: u64,
    to: u64,
) -> u64 {
    let mut reads = 0u64;
    for sec in from..to {
        for i in 0..scale.ops_per_sec {
            let at = sec as f64 + i as f64 / scale.ops_per_sec as f64;
            if rng.next() < read_mix {
                let center = next_query_center(rng, spots);
                cluster
                    .nn(center, 8, Timestamp::from_secs_f64(at))
                    .expect("nn query");
                reads += 1;
            } else {
                cluster
                    .update(&next_update(rng, scale.objects, spots, at))
                    .expect("update");
            }
        }
        cluster
            .run_due_clustering(Timestamp::from_secs(sec + 1))
            .expect("clustering");
    }
    reads
}

struct Measured {
    read_qps: f64,
    replica_read_share: f64,
    /// Keys instantly promoted by the post-measure kill (0 at k=1, where
    /// the kill phase is skipped — there is no follower to promote).
    promoted_keys: u64,
    /// Wall-clock µs from `remove_shard` entry to the first successful
    /// post-kill hot-cell NN. Wall time ⇒ reported `(noisy)`.
    kill_to_read_us: f64,
}

fn run_one(shards: usize, replicas: usize, read_mix: f64, scale: &Scale) -> Measured {
    let spots_pair = colliding_hot_spots(shards);
    let spots = [spots_pair.0, spots_pair.1];
    let store = Bigtable::new();
    let cluster = MoistCluster::builder(&store, config())
        .shards(shards)
        .replicas(replicas)
        .build()
        .expect("cluster");
    let mut rng = Rng(0x000F_1617_AB1E);
    seed(&cluster, &mut rng, scale.objects, &spots);
    drive(
        &cluster,
        &mut rng,
        scale,
        &spots,
        read_mix,
        1,
        scale.warmup_secs,
    );
    cluster.reset_clocks();
    let before = cluster.cluster_stats(Timestamp::from_secs(scale.warmup_secs));
    let reads = drive(
        &cluster,
        &mut rng,
        scale,
        &spots,
        read_mix,
        scale.warmup_secs,
        scale.warmup_secs + scale.measure_secs,
    );
    let end_secs = scale.warmup_secs + scale.measure_secs;
    let after = cluster.cluster_stats(Timestamp::from_secs(end_secs));
    let busiest_secs = cluster.max_elapsed_us() / 1e6;
    let read_qps = reads as f64 / busiest_secs.max(1e-9);
    let replica_read_share = (after.replica_reads - before.replica_reads) as f64 / reads as f64;

    // Kill the hot primary and time the handover: at k≥2 its keys'
    // rank-1 followers adopt at preserved deadlines, and the very next
    // read on a hot cell must be served — zero downtime.
    let (promoted_keys, kill_to_read_us) = if replicas >= 2 {
        let victim_pos = cluster.shard_for_point(&Point::new(spots[0].0, spots[0].1));
        let victim_id = cluster.shard_ids()[victim_pos];
        let promos_before = after.promotions;
        let t0 = Instant::now();
        cluster.remove_shard(victim_id).expect("remove hot primary");
        let (hits, _) = cluster
            .nn(
                Point::new(spots[0].0, spots[0].1),
                8,
                Timestamp::from_secs(end_secs),
            )
            .expect("post-kill NN must be served");
        let us = t0.elapsed().as_secs_f64() * 1e6;
        assert!(
            !hits.is_empty(),
            "post-kill NN on the hot cell returned nothing"
        );
        let promos = cluster
            .cluster_stats(Timestamp::from_secs(end_secs))
            .promotions
            - promos_before;
        assert!(promos > 0, "a kill at k={replicas} must promote followers");
        // The adopted deadlines must still drive clustering on the new
        // primaries — the schedule survived the kill intact.
        cluster
            .run_due_clustering(Timestamp::from_secs(end_secs + 10))
            .expect("post-kill clustering");
        (promos, us)
    } else {
        (0, 0.0)
    };

    Measured {
        read_qps,
        replica_read_share,
        promoted_keys,
        kill_to_read_us,
    }
}

fn mix_label(read_mix: f64) -> String {
    format!("{:.0}/{:.0}", read_mix * 100.0, (1.0 - read_mix) * 100.0)
}

fn main() {
    let smoke = smoke_mode();
    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    let id = if smoke {
        "fig17_replicas_smoke"
    } else {
        "fig17_replicas"
    };
    let mut fig = Figure::new(
        id,
        "Replicated ownership: hot-cell read QPS by replica factor, promotion latency on primary kill",
        "shards",
        "reads/s (virtual) / ratio (x) / us",
    );
    let mut qps_series: Vec<Series> = Vec::new();
    let mut gain_series: Vec<Series> = Vec::new();
    for &mix in &scale.read_mixes {
        for &k in &scale.replica_factors {
            qps_series.push(Series::new(format!("read QPS k={k} {}", mix_label(mix))));
        }
        gain_series.push(Series::new(format!("k=2 read gain {} (x)", mix_label(mix))));
    }
    let mut promo_series = Series::new("promoted keys k=2");
    let mut latency_series = Series::new("kill-to-read us k=2 (noisy)");
    println!(
        "{:>7} {:>6} {:>4} {:>12} {:>10} {:>9} {:>14}",
        "shards", "mix", "k", "read q/s", "repl-share", "promoted", "kill-to-read"
    );
    // The acceptance pair: k=1 and k=2 read QPS on the 90/10 mix at the
    // largest fleet.
    let mut headline: Option<(f64, f64)> = None;
    for &shards in &scale.shard_counts {
        let mut col = 0usize;
        for (mi, &mix) in scale.read_mixes.iter().enumerate() {
            let mut baseline_qps = 0.0f64;
            for &k in &scale.replica_factors {
                let m = run_one(shards, k, mix, &scale);
                println!(
                    "{shards:>7} {:>6} {k:>4} {:>12.0} {:>10.3} {:>9} {:>11.0}us",
                    mix_label(mix),
                    m.read_qps,
                    m.replica_read_share,
                    m.promoted_keys,
                    m.kill_to_read_us
                );
                qps_series[col].push(shards as f64, m.read_qps);
                col += 1;
                if k == 1 {
                    baseline_qps = m.read_qps;
                }
                if k == 2 {
                    let gain = m.read_qps / baseline_qps.max(1e-9);
                    gain_series[mi].push(shards as f64, gain);
                    if mix >= 0.89 {
                        promo_series.push(shards as f64, m.promoted_keys as f64);
                        latency_series.push(shards as f64, m.kill_to_read_us);
                        if shards == *scale.shard_counts.last().unwrap() {
                            headline = Some((baseline_qps, m.read_qps));
                        }
                    }
                }
            }
        }
    }
    for s in qps_series {
        fig.add(s);
    }
    for s in gain_series {
        fig.add(s);
    }
    fig.add(promo_series);
    fig.add(latency_series);
    fig.print();
    fig.save().expect("save");

    // Acceptance bar (virtual-time numbers from a single-threaded
    // driver: deterministic, safe to assert on). Smoke keeps a loose bar
    // — 4 shards leave less room to spread than the full run's 10.
    let (base, replicated) = headline.expect("90/10 mix at the largest fleet ran");
    let gain = replicated / base.max(1e-9);
    let bar = if smoke { 1.2 } else { 2.0 };
    assert!(
        gain >= bar,
        "k=2 read QPS gain {gain:.2}x is below the {bar}x bar ({base:.0} -> {replicated:.0} reads/s)"
    );
    println!(
        "k=2 at {} shards, 90/10 mix: {gain:.2}x read QPS ({base:.0} -> {replicated:.0} reads/s)",
        scale.shard_counts.last().unwrap()
    );
}
