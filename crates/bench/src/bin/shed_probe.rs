// quick probe: shed ratio vs epsilon on the road workload
use moist::bigtable::{Bigtable, Timestamp};
use moist::core::{MoistConfig, MoistServer, ObjectId, UpdateMessage};
use moist::workload::{RoadMap, RoadMapConfig, RoadNetSim, SimConfig};

fn main() {
    let trace: Vec<_> = {
        let mut sim = RoadNetSim::new(
            RoadMap::new(RoadMapConfig::default()),
            SimConfig {
                agents: 1000,
                seed: 77,
                location_noise: 0.1,
                velocity_noise: 0.01,
                ..SimConfig::default()
            },
        );
        sim.advance_until(240.0)
    };
    println!("trace: {} updates", trace.len());
    for eps in [15.0, 25.0, 50.0] {
        for dm in [1.0, 2.0] {
            for cl in [1u8, 2, 3] {
                let store = Bigtable::new();
                let cfg = MoistConfig {
                    epsilon: eps,
                    delta_m: dm,
                    clustering_level: cl,
                    ..MoistConfig::default()
                };
                let mut server = MoistServer::new(&store, cfg).unwrap();
                let mut next_cluster = 10.0;
                for u in &trace {
                    if u.at_secs >= next_cluster {
                        server
                            .run_due_clustering(Timestamp::from_secs_f64(u.at_secs))
                            .unwrap();
                        next_cluster += 10.0;
                    }
                    server
                        .update(&UpdateMessage {
                            oid: ObjectId(u.oid),
                            loc: u.loc,
                            vel: u.vel,
                            ts: Timestamp::from_secs_f64(u.at_secs),
                        })
                        .unwrap();
                }
                let m = store.metrics_snapshot();
                let st = server.stats();
                let leaders = server.tables().spatial.row_count();
                println!("eps={eps:>5} dm={dm} cl={cl}  shed={:.3}  writes={}  leaders={}  leader_up={} departs={} reg={}",
                st.shed_ratio(), m.write_ops + m.batch_ops, leaders, st.leader_updates, st.departures, st.registered);
            }
        }
    }
}
