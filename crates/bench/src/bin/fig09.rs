//! Figure 9 — "Impact of parameters on the average number of OS" (§4.2.1).
//!
//! * `fig09 a` — average #OSes vs deviation threshold ε, three speed
//!   profiles (pedestrians-only / mixed / cars-only);
//! * `fig09 b` — average #OSes vs total number of objects (100 → 1000);
//! * `fig09 c` — #OSes over time with `T_c = 10 s`.
//!
//! Default workload as in the paper: road network, update frequency about
//! one per second, default population 100.

use moist::bigtable::Timestamp;
use moist::core::{MoistConfig, MoistServer, ObjectId, UpdateMessage};
use moist::workload::{RoadMap, RoadMapConfig, RoadNetSim, SimConfig};
use moist_bench::{Figure, Series};

/// Runs the road workload for `horizon` seconds and samples the number of
/// OSes (spatial-index leader rows) every `sample_every` seconds after the
/// warm-up. Returns `(samples, shed_ratio)`.
fn run(
    agents: u64,
    car_fraction: f64,
    epsilon: f64,
    horizon: f64,
    warmup: f64,
    sample_every: f64,
    seed: u64,
) -> (Vec<(f64, usize)>, f64) {
    let cfg = MoistConfig {
        epsilon,
        ..MoistConfig::default()
    };
    let store = moist::bigtable::Bigtable::new();
    let mut server = MoistServer::new(&store, cfg).expect("server");
    let mut sim = RoadNetSim::new(
        RoadMap::new(RoadMapConfig::default()),
        SimConfig {
            agents,
            car_fraction,
            // "a default update frequency of one update per second":
            max_update_interval_secs: 2.0,
            seed,
            ..SimConfig::default()
        },
    );
    let mut samples = Vec::new();
    let mut t = 0.0;
    while t < horizon {
        t += sample_every;
        for u in sim.advance_until(t) {
            server
                .update(&UpdateMessage {
                    oid: ObjectId(u.oid),
                    loc: u.loc,
                    vel: u.vel,
                    ts: Timestamp::from_secs_f64(u.at_secs),
                })
                .expect("update");
        }
        server
            .run_due_clustering(Timestamp::from_secs_f64(t))
            .expect("clustering");
        if t >= warmup {
            samples.push((t, server.tables().spatial.row_count()));
        }
    }
    (samples, server.stats().shed_ratio())
}

fn avg_os(samples: &[(f64, usize)]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|&(_, n)| n as f64).sum::<f64>() / samples.len() as f64
}

fn fig_a() {
    let mut fig = Figure::new(
        "fig09a",
        "Average #OSes vs deviation threshold ε (100 objects, 1 Hz)",
        "epsilon",
        "avg #OS",
    );
    for (label, car_fraction) in [
        ("pedestrians (0-1 u/s)", 0.0),
        ("mixed (50/50)", 0.5),
        ("cars (1-2 u/s)", 1.0),
    ] {
        let mut series = Series::new(label);
        for eps in [1.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0] {
            let (samples, _) = run(100, car_fraction, eps, 120.0, 30.0, 5.0, 42);
            series.push(eps, avg_os(&samples));
        }
        fig.add(series);
    }
    fig.print();
    fig.save().expect("save");
}

fn fig_b() {
    let mut fig = Figure::new(
        "fig09b",
        "Average #OSes vs total number of objects (default ε)",
        "objects",
        "avg #OS",
    );
    let mut oses = Series::new("avg #OS");
    let mut shed = Series::new("shed ratio x100");
    for n in [100u64, 200, 400, 600, 800, 1000] {
        let (samples, shed_ratio) =
            run(n, 0.5, MoistConfig::default().epsilon, 120.0, 30.0, 5.0, 42);
        oses.push(n as f64, avg_os(&samples));
        shed.push(n as f64, shed_ratio * 100.0);
    }
    fig.add(oses);
    fig.add(shed);
    fig.print();
    fig.save().expect("save");
}

fn fig_c() {
    let mut fig = Figure::new(
        "fig09c",
        "#OSes over time (T_c = 10 s, 100 objects)",
        "time (s)",
        "#OS",
    );
    let mut series = Series::new("#OS");
    let (samples, _) = run(
        100,
        0.5,
        MoistConfig::default().epsilon,
        120.0,
        0.0,
        2.0,
        42,
    );
    for (t, n) in &samples {
        series.push(*t, *n as f64);
    }
    // Variance check the paper quotes: "an update interval of Tc = 10
    // seconds can keep the variance of the number of OSes within 10".
    let steady: Vec<f64> = samples
        .iter()
        .filter(|(t, _)| *t >= 40.0)
        .map(|&(_, n)| n as f64)
        .collect();
    let mean = steady.iter().sum::<f64>() / steady.len().max(1) as f64;
    let var =
        steady.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / steady.len().max(1) as f64;
    fig.add(series);
    fig.print();
    println!("steady-state mean #OS = {mean:.1}, variance = {var:.1}");
    fig.save().expect("save");
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match arg.as_str() {
        "a" => fig_a(),
        "b" => fig_b(),
        "c" => fig_c(),
        _ => {
            fig_a();
            fig_b();
            fig_c();
        }
    }
}
