//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! * `ablate cluster` — hexagonal O(n) velocity binning (§3.3.2) vs the
//!   naive O(n²) pairwise-threshold grouping it replaces: wall-clock
//!   compute time per clustering;
//! * `ablate curve`   — Hilbert vs Z-order (Morton) keys: how many
//!   contiguous scan ranges a rectangular region costs, and NN query cost
//!   (the paper: "Hilbert Curves perform slightly better");
//! * `ablate ppp`     — the §3.6.2 sweep: `U_d`, `R_d`, `min(U_d, R_d)` and
//!   ping-pong feasibility against the number of disks, plus the chosen
//!   optimum.

use moist::archive::{DiskProfile, PlannerInput, RECORD_BYTES};
use moist::core::{HexGrid, MoistConfig};
use moist::spatial::{cover_rect, CurveKind, Rect, Velocity};
use moist_bench::{Figure, Series};
use std::time::Instant;

fn rnd_stream(mut state: u64) -> impl FnMut() -> f64 {
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn ablate_cluster() {
    let mut fig = Figure::new(
        "ablate_cluster",
        "Velocity grouping: hexagonal O(n) binning vs naive O(n^2) pairwise",
        "leaders",
        "compute time (ms)",
    );
    let mut hex_series = Series::new("hexagon binning");
    let mut naive_series = Series::new("naive pairwise");
    let delta_m = MoistConfig::default().delta_m;
    for n in [1_000usize, 2_000, 4_000, 8_000, 16_000] {
        let mut rnd = rnd_stream(0xC0FFEE + n as u64);
        let velocities: Vec<Velocity> = (0..n)
            .map(|_| Velocity::new(rnd() * 4.0 - 2.0, rnd() * 4.0 - 2.0))
            .collect();

        // Hexagonal binning (the shipped algorithm).
        let grid = HexGrid::new(delta_m);
        let t0 = Instant::now();
        let mut bins: std::collections::HashMap<moist::core::HexBin, u32> =
            std::collections::HashMap::new();
        for v in &velocities {
            *bins.entry(grid.bin(v)).or_default() += 1;
        }
        let hex_ms = t0.elapsed().as_secs_f64() * 1e3;
        let hex_groups = bins.len();

        // Naive pairwise greedy grouping at the same threshold.
        let t0 = Instant::now();
        let mut group_of = vec![usize::MAX; n];
        let mut reps: Vec<usize> = Vec::new();
        for i in 0..n {
            let mut assigned = false;
            for (g, &rep) in reps.iter().enumerate() {
                if velocities[i].difference(&velocities[rep]) < delta_m {
                    group_of[i] = g;
                    assigned = true;
                    break;
                }
            }
            if !assigned {
                group_of[i] = reps.len();
                reps.push(i);
            }
        }
        let naive_ms = t0.elapsed().as_secs_f64() * 1e3;
        hex_series.push(n as f64, hex_ms);
        naive_series.push(n as f64, naive_ms);
        println!(
            "n={n:>6}: hexagon {hex_ms:>8.3} ms ({hex_groups} groups) | naive {naive_ms:>9.3} ms ({} groups)",
            reps.len()
        );
    }
    fig.add(hex_series);
    fig.add(naive_series);
    fig.print();
    fig.save().expect("save");
}

fn ablate_curve() {
    let mut fig = Figure::new(
        "ablate_curve",
        "Hilbert vs Z-order: contiguous scan ranges per region query",
        "region side (units)",
        "avg contiguous ranges",
    );
    let level = 8u8;
    for kind in [CurveKind::Hilbert, CurveKind::Morton] {
        let mut series = Series::new(format!("{kind:?}"));
        for side in [25.0, 50.0, 100.0, 200.0, 400.0] {
            let mut rnd = rnd_stream(0xABCDEF);
            let mut total_ranges = 0usize;
            let trials = 200;
            for _ in 0..trials {
                let x0 = rnd() * (1000.0 - side) / 1000.0;
                let y0 = rnd() * (1000.0 - side) / 1000.0;
                let rect = Rect::new(x0, y0, x0 + side / 1000.0, y0 + side / 1000.0);
                let cells = cover_rect(kind, level, &rect);
                // Count maximal contiguous index runs = separate scan RPCs.
                let mut ranges = 0usize;
                let mut prev = u64::MAX;
                for c in &cells {
                    if prev == u64::MAX || c.index != prev + 1 {
                        ranges += 1;
                    }
                    prev = c.index;
                }
                total_ranges += ranges;
            }
            series.push(side, total_ranges as f64 / trials as f64);
        }
        fig.add(series);
    }
    fig.print();
    let h_avg: f64 = fig.series[0].points.iter().map(|p| p.1).sum::<f64>();
    let m_avg: f64 = fig.series[1].points.iter().map(|p| p.1).sum::<f64>();
    println!(
        "Hilbert needs {:.1}% of Z-order's scan ranges (fewer = fewer RPCs)",
        100.0 * h_avg / m_avg
    );
    fig.save().expect("save");
}

fn ablate_ppp() {
    let input = PlannerInput {
        buffer_bytes: (1_000_000 * RECORD_BYTES) as f64, // s_rec × n_o, 1M objects
        objects: 1_000_000,
        fill_rate_bytes_per_sec: 3.0e6,
        k: 20_000.0,
        disk: DiskProfile::default(),
        max_disks: 64,
    };
    let plan = input.plan();
    let mut fig = Figure::new(
        "ablate_ppp",
        "PPP planner: U_d / R_d / min vs number of disks (1M objects)",
        "disks",
        "utilisation / resolution",
    );
    let mut ud = Series::new("U_d (write util)");
    let mut rd = Series::new("R_d (read res)");
    let mut mn = Series::new("min(U_d, R_d)");
    let mut feas = Series::new("feasible (0/1)");
    for p in &plan.sweep {
        ud.push(f64::from(p.nd), p.ud);
        rd.push(f64::from(p.nd), p.rd);
        mn.push(f64::from(p.nd), p.ud.min(p.rd));
        feas.push(f64::from(p.nd), if p.feasible { 1.0 } else { 0.0 });
    }
    fig.add(ud);
    fig.add(rd);
    fig.add(mn);
    fig.add(feas);
    fig.print();
    println!(
        "\nchosen n_d = {} (U_d = {:.4}, R_d = {:.4}, T_d = {:.3}s, T_m = {:.3}s, feasible = {})",
        plan.best.nd, plan.best.ud, plan.best.rd, plan.best.td, plan.best.tm, plan.best.feasible
    );
    println!(
        "unconstrained optimum n_d* = {:.1}",
        input.unconstrained_optimum()
    );
    fig.save().expect("save");
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    if arg == "cluster" || arg == "all" {
        ablate_cluster();
    }
    if arg == "curve" || arg == "all" {
        ablate_curve();
    }
    if arg == "ppp" || arg == "all" {
        ablate_ppp();
    }
}
