//! Figure 15 (repo extension) — scatter-gather region-query fan-out.
//!
//! The paper's front-end tier exists so index maintenance *and* query
//! work scale with the fleet (§3.2.1: BigTable "provides parallelism to
//! read data from multiple ranges"). Before fan-out, `MoistCluster`
//! routed a region query to the single shard owning the rectangle's
//! centre cell, serializing the whole scan on one server while the rest
//! idled. This bin sweeps **region size × shard count** and compares, on
//! identical stores:
//!
//! * **anchor** — the old routing ([`MoistCluster::region_anchor`]): one
//!   shard scans every planned range back to back;
//! * **fanout** — scatter-gather ([`MoistCluster::region`]): the plan is
//!   owner-sliced, each slice scans on a pooled worker against its shard,
//!   and the client-visible cost is the slowest slice.
//!
//! Client-visible QPS is `1e6 / mean cost_us` over the probe set; both
//! paths must return identical answers (asserted per query). The full run
//! asserts the acceptance bar: ≥2× client-visible speedup for the
//! largest region at 10 shards. Results land in
//! `bench_results/fig15_fanout{,_smoke}.json` and feed the CI
//! `bench_trend --check` gate.

use moist::bigtable::{Bigtable, Timestamp};
use moist::core::{MoistCluster, MoistConfig, ObjectId, UpdateMessage};
use moist::spatial::{Point, Rect, Velocity};
use moist_bench::{smoke_mode, Figure, Series};

struct Scale {
    shard_counts: Vec<usize>,
    objects: u64,
    region_sides: Vec<f64>,
    queries_per_side: usize,
}

impl Scale {
    fn full() -> Self {
        Scale {
            shard_counts: vec![1, 2, 5, 10],
            objects: 20_000,
            region_sides: vec![125.0, 250.0, 500.0, 1000.0],
            queries_per_side: 8,
        }
    }

    fn smoke() -> Self {
        Scale {
            shard_counts: vec![4],
            objects: 2_500,
            region_sides: vec![250.0, 1000.0],
            queries_per_side: 4,
        }
    }
}

/// Deterministic xorshift scatter in (0, 1000)².
fn scattered(n: u64) -> Vec<(u64, f64, f64)> {
    let mut state = 0x853C_49E6_748F_EA9Bu64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| (i, 2.0 + next() * 996.0, 2.0 + next() * 996.0))
        .collect()
}

/// Probe rectangles of side `side`, centres marching across the map.
fn probe_rects(side: f64, count: usize) -> Vec<Rect> {
    (0..count)
        .map(|q| {
            let f = (q as f64 + 0.5) / count as f64;
            let cx = (side / 2.0) + f * (1000.0 - side).max(0.0);
            let cy = (side / 2.0) + (1.0 - f) * (1000.0 - side).max(0.0);
            Rect::new(
                cx - side / 2.0,
                cy - side / 2.0,
                cx + side / 2.0,
                cy + side / 2.0,
            )
        })
        .collect()
}

struct Measured {
    anchor_qps: f64,
    fanout_qps: f64,
    mean_scatter: f64,
}

fn run_one(shards: usize, side: f64, scale: &Scale) -> Measured {
    let store = Bigtable::new();
    let cfg = MoistConfig {
        epsilon: 50.0,
        delta_m: 2.0,
        clustering_level: 3, // 64 cells across the shards
        cluster_interval_secs: 10.0,
        ..MoistConfig::default()
    };
    let cluster = MoistCluster::builder(&store, cfg)
        .shards(shards)
        .build()
        .expect("cluster");
    for &(i, x, y) in &scattered(scale.objects) {
        cluster
            .update(&UpdateMessage {
                oid: ObjectId(i),
                loc: Point::new(x, y),
                vel: Velocity::ZERO,
                ts: Timestamp::ZERO,
            })
            .expect("update");
    }

    let rects = probe_rects(side, scale.queries_per_side);
    let mut anchor_us = 0.0;
    let mut fanout_us = 0.0;
    let mut scatter = 0usize;
    for rect in &rects {
        let (a_hits, a_stats) = cluster
            .region_anchor(rect, Timestamp::ZERO, 0.0)
            .expect("anchor region");
        let (f_hits, f_stats) = cluster
            .region(rect, Timestamp::ZERO, 0.0)
            .expect("fanout region");
        let a_ids: Vec<u64> = a_hits.iter().map(|n| n.oid.0).collect();
        let f_ids: Vec<u64> = f_hits.iter().map(|n| n.oid.0).collect();
        assert_eq!(a_ids, f_ids, "fan-out must return the anchor answer");
        anchor_us += a_stats.cost_us;
        fanout_us += f_stats.cost_us;
        scatter += f_stats.shards_scattered;
    }
    let n = rects.len() as f64;
    Measured {
        anchor_qps: 1e6 / (anchor_us / n).max(1e-9),
        fanout_qps: 1e6 / (fanout_us / n).max(1e-9),
        mean_scatter: scatter as f64 / n,
    }
}

fn main() {
    let smoke = smoke_mode();
    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    let id = if smoke {
        "fig15_fanout_smoke"
    } else {
        "fig15_fanout"
    };
    let mut fig = Figure::new(
        id,
        "Region-query fan-out: client-visible QPS, anchor routing vs scatter-gather",
        "region side (world units)",
        "queries/s (virtual)",
    );
    println!(
        "{:>7} {:>10} {:>14} {:>14} {:>9} {:>9}",
        "shards", "side", "anchor q/s", "fanout q/s", "speedup", "slices"
    );
    let mut headline_speedup = 0.0;
    for &shards in &scale.shard_counts {
        let mut anchor_series = Series::new(format!("anchor {shards} shards"));
        let mut fanout_series = Series::new(format!("fanout {shards} shards"));
        for &side in &scale.region_sides {
            let m = run_one(shards, side, &scale);
            let speedup = m.fanout_qps / m.anchor_qps.max(1e-9);
            println!(
                "{shards:>7} {side:>10.0} {:>14.1} {:>14.1} {:>8.2}x {:>9.1}",
                m.anchor_qps, m.fanout_qps, speedup, m.mean_scatter
            );
            anchor_series.push(side, m.anchor_qps);
            fanout_series.push(side, m.fanout_qps);
            let is_headline = shards == *scale.shard_counts.last().unwrap()
                && side == *scale.region_sides.last().unwrap();
            if is_headline {
                headline_speedup = speedup;
            }
        }
        fig.add(anchor_series);
        fig.add(fanout_series);
    }
    fig.print();
    fig.save().expect("save");
    // The acceptance bar (virtual cost is deterministic, so this is a
    // stable assertion, not a wobbling wall-clock one): the largest
    // region at the largest fleet must fan out to >= 2x.
    let bar = if smoke { 1.2 } else { 2.0 };
    assert!(
        headline_speedup >= bar,
        "largest-region fan-out speedup {headline_speedup:.2}x is below the {bar}x bar"
    );
    println!(
        "largest region at {} shards: {:.2}x client-visible speedup over anchor routing",
        scale.shard_counts.last().unwrap(),
        headline_speedup
    );
}
