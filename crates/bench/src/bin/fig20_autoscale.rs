//! Figure 20 (repo extension) — self-tuning elasticity under a flash
//! crowd.
//!
//! The paper's scale-out experiments (§4.3.3) size the fleet by hand;
//! `fig14_scaleout --elastic` already measures the *mechanism* (live
//! joins) but still drives it from a hard-coded schedule. This bin closes
//! the loop the [`AutoController`] was built for: a surge workload hits a
//! small fleet, and the controller — fed only by the tier's own measured
//! signals through client-driven [`controller_tick`]s — must grow the
//! fleet, recover client-visible QPS, and then *shrink back* once the
//! crowd leaves, with **zero operator calls**.
//!
//! Two arms over identically seeded workload streams:
//!
//! * **baseline** — a hand-scheduled operator with perfect knowledge:
//!   joins to the surge-sized fleet at the instant the surge starts and
//!   retires back the instant it ends (the best fixed schedule can do);
//! * **controller** — starts at the same 2 shards with an attached
//!   [`ControllerConfig`]; nobody calls `add_shard`/`remove_shard`.
//!
//! Objects jitter within `epsilon` of their own last report, so MOIST
//! sheds a share of updates as school members — normal served traffic,
//! folded back into client QPS through the shed-ratio multiplier, and
//! deliberately invisible to the controller (it watches
//! [`ClusterStats::refused`], not school sheds). Updates are mixed with
//! NN probes so shard busy-time, and therefore windowed QPS, scales with
//! the fleet instead of saturating the store-capacity clip.
//!
//! Reported (all virtual-time, single-threaded driver — deterministic):
//! windowed client QPS and live shard count for both arms, plus two
//! headline scalars: steady-state **recovered QPS** (controller vs
//! baseline over the late-surge windows) and **time-to-recover** (virtual
//! seconds from surge start until the controller's windowed QPS first
//! reaches 80% of the baseline's surge steady state).
//!
//! Asserted in both full and smoke runs:
//!
//! * the surge visibly overloads the unscaled fleet (the signal is real);
//! * the controller recovers to ≥ 80% of the hand-scheduled baseline's
//!   late-surge steady state, without one operator call;
//! * after the surge the controller scales back down to within one shard
//!   of the pre-surge fleet;
//! * the decision log shows real adds *and* removes, and scaling
//!   decisions from different windows respect the cool-down.
//!
//! [`AutoController`]: moist::core::AutoController
//! [`controller_tick`]: moist::core::MoistCluster::controller_tick
//! [`ClusterStats::refused`]: moist::core::ClusterStats::refused

use moist::bigtable::{Bigtable, Timestamp};
use moist::core::{
    ControllerAction, ControllerConfig, MoistCluster, MoistConfig, ObjectId, UpdateMessage,
};
use moist::spatial::{Point, Velocity};
use moist_bench::{smoke_mode, Figure, Series, STORE_WRITE_CAPACITY_OPS};
use std::collections::HashMap;

struct Scale {
    /// Virtual seconds of pre-surge steady state.
    steady_secs: u64,
    /// Virtual seconds of surge.
    surge_secs: u64,
    /// Virtual seconds after the surge.
    post_secs: u64,
    /// Measurement window.
    window_secs: u64,
    steady_updates_per_sec: u64,
    surge_updates_per_sec: u64,
    steady_nn_per_sec: u64,
    surge_nn_per_sec: u64,
    /// Shard count both arms start (and should end) with.
    start_shards: usize,
    /// The operator's surge fleet — also the controller's rough target.
    surge_shards: usize,
    controller: ControllerConfig,
}

impl Scale {
    fn full() -> Self {
        Scale {
            steady_secs: 100,
            surge_secs: 120,
            post_secs: 140,
            window_secs: 10,
            steady_updates_per_sec: 300,
            surge_updates_per_sec: 2_400,
            steady_nn_per_sec: 60,
            surge_nn_per_sec: 480,
            start_shards: 2,
            surge_shards: 6,
            controller: ControllerConfig {
                min_shards: 2,
                max_shards: 10,
                window_secs: 5.0,
                cooldown_secs: 15.0,
                rebalance_every_secs: 10.0,
                target_shard_busy_us: 55_000.0,
                ..ControllerConfig::default()
            },
        }
    }

    fn smoke() -> Self {
        Scale {
            steady_secs: 50,
            surge_secs: 60,
            post_secs: 100,
            window_secs: 10,
            steady_updates_per_sec: 150,
            surge_updates_per_sec: 1_200,
            steady_nn_per_sec: 30,
            surge_nn_per_sec: 240,
            start_shards: 2,
            surge_shards: 6,
            controller: ControllerConfig {
                min_shards: 2,
                max_shards: 8,
                window_secs: 5.0,
                cooldown_secs: 15.0,
                rebalance_every_secs: 10.0,
                target_shard_busy_us: 28_000.0,
                ..ControllerConfig::default()
            },
        }
    }

    fn end_secs(&self) -> u64 {
        self.steady_secs + self.surge_secs + self.post_secs
    }

    fn surge_start(&self) -> u64 {
        self.steady_secs
    }

    fn surge_end(&self) -> u64 {
        self.steady_secs + self.surge_secs
    }

    fn demand_at(&self, sec: u64) -> (u64, u64) {
        if sec >= self.surge_start() && sec < self.surge_end() {
            (self.surge_updates_per_sec, self.surge_nn_per_sec)
        } else {
            (self.steady_updates_per_sec, self.steady_nn_per_sec)
        }
    }
}

/// Objects sit on a 32×32 home grid spaced ~30 units apart — wider than
/// `epsilon`, so distinct objects never merge into one school; the only
/// shedding is an object re-reporting within `epsilon` of itself.
const GRID_SIDE: u64 = 32;
const OBJECTS: u64 = GRID_SIDE * GRID_SIDE;

fn config() -> MoistConfig {
    MoistConfig {
        epsilon: 10.0,
        delta_m: 2.0,
        clustering_level: 3,
        cluster_interval_secs: 10.0,
        ..MoistConfig::default()
    }
}

/// Deterministic xorshift stream (same generator as fig16).
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn home(oid: u64) -> (f64, f64) {
    (
        15.0 + (oid % GRID_SIDE) as f64 * 30.0,
        15.0 + (oid / GRID_SIDE) as f64 * 30.0,
    )
}

/// One virtual second of demand: uniform updates jittering objects around
/// their homes, plus NN probes (query load is what makes busy-time, and
/// therefore windowed QPS, track fleet size).
fn drive_second(cluster: &MoistCluster, rng: &mut Rng, sec: u64, updates: u64, queries: u64) {
    for i in 0..updates {
        let oid = (rng.next() * OBJECTS as f64) as u64 % OBJECTS;
        let (hx, hy) = home(oid);
        let at = sec as f64 + i as f64 / updates as f64;
        cluster
            .update(&UpdateMessage {
                oid: ObjectId(oid),
                loc: Point::new(hx + rng.next() * 6.0 - 3.0, hy + rng.next() * 6.0 - 3.0),
                vel: Velocity::ZERO,
                ts: Timestamp::from_secs_f64(at),
            })
            .expect("update");
    }
    for q in 0..queries {
        let oid = (rng.next() * OBJECTS as f64) as u64 % OBJECTS;
        let (hx, hy) = home(oid);
        let at = sec as f64 + q as f64 / queries.max(1) as f64;
        cluster
            .nn(Point::new(hx, hy), 5, Timestamp::from_secs_f64(at))
            .expect("nn probe");
    }
}

struct Arm {
    /// `(window end secs, client QPS)` per window.
    qps: Vec<(f64, f64)>,
    /// `(window end secs, live shards)` per window.
    shards: Vec<(f64, f64)>,
    final_shards: usize,
    shed: u64,
}

/// Runs one arm over the full timeline. `managed` attaches the
/// controller; otherwise `schedule` is the operator: `(at sec, target
/// fleet)` applied on the tick boundary.
fn run_arm(scale: &Scale, managed: bool, schedule: &[(u64, usize)]) -> (Arm, MoistCluster) {
    let store = Bigtable::new();
    let mut builder = MoistCluster::builder(&store, config()).shards(scale.start_shards);
    if managed {
        builder = builder.controller(scale.controller);
    }
    let cluster = builder.build().expect("cluster");
    let mut rng = Rng(0xF162_0AE5_CA1E);
    let mut qps = Vec::new();
    let mut shards = Vec::new();
    let mut shed_total = 0u64;
    let mut schedule = schedule.iter().copied().peekable();

    let mut t = 0u64;
    while t < scale.end_secs() {
        let window_end = (t + scale.window_secs).min(scale.end_secs());
        let before = cluster.stats();
        // Per-shard busy baselines: joins and retirements change the
        // fleet mid-window, so the busiest-shard delta is taken per id.
        let elapsed_before: HashMap<u64, f64> = cluster
            .cluster_stats(Timestamp::from_secs(t))
            .shards
            .iter()
            .map(|s| (s.id, s.elapsed_us))
            .collect();
        for sec in t..window_end {
            if let Some(&(at, target)) = schedule.peek() {
                if sec >= at {
                    while cluster.num_shards() < target {
                        cluster.add_shard().expect("operator join");
                    }
                    while cluster.num_shards() > target {
                        let id = *cluster.shard_ids().last().expect("nonempty fleet");
                        cluster.remove_shard(id).expect("operator retire");
                    }
                    schedule.next();
                }
            }
            let (ups, nns) = scale.demand_at(sec);
            drive_second(&cluster, &mut rng, sec, ups, nns);
            let now = Timestamp::from_secs(sec + 1);
            cluster.run_due_clustering(now).expect("clustering");
            if managed {
                cluster.controller_tick(now).expect("controller tick");
            }
        }
        let after = cluster.stats();
        let cstats = cluster.cluster_stats(Timestamp::from_secs(window_end));
        let busiest_us = cstats
            .shards
            .iter()
            .map(|s| s.elapsed_us - elapsed_before.get(&s.id).copied().unwrap_or(0.0))
            .fold(0.0f64, f64::max);
        let updates = after.updates - before.updates;
        let shed = after.shed - before.shed;
        shed_total += shed;
        let non_shed = (updates - shed) as f64;
        let store_qps = (non_shed / (busiest_us / 1e6).max(1e-9)).min(STORE_WRITE_CAPACITY_OPS);
        let shed_ratio = shed as f64 / updates.max(1) as f64;
        let client_qps = store_qps / (1.0 - shed_ratio).max(0.05);
        qps.push((window_end as f64, client_qps));
        shards.push((window_end as f64, cluster.num_shards() as f64));
        t = window_end;
    }
    let arm = Arm {
        qps,
        shards,
        final_shards: cluster.num_shards(),
        shed: shed_total,
    };
    (arm, cluster)
}

/// Mean of a windowed series over `(from, to]` window-end times.
fn mean_over(series: &[(f64, f64)], from: f64, to: f64) -> f64 {
    let vals: Vec<f64> = series
        .iter()
        .filter(|&&(t, _)| t > from && t <= to)
        .map(|&(_, v)| v)
        .collect();
    vals.iter().sum::<f64>() / vals.len().max(1) as f64
}

fn main() {
    let smoke = smoke_mode();
    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    let id = if smoke {
        "fig20_autoscale_smoke"
    } else {
        "fig20_autoscale"
    };

    // The operator's perfect fixed schedule: grow the instant the surge
    // starts, retire the instant it ends.
    let schedule = [
        (scale.surge_start(), scale.surge_shards),
        (scale.surge_end(), scale.start_shards),
    ];
    let (baseline, base_cluster) = run_arm(&scale, false, &schedule);
    let (managed, cluster) = run_arm(&scale, true, &[]);

    println!(
        "{:>8} {:>12} {:>7} {:>12} {:>7}",
        "sim sec", "base q/s", "shards", "ctrl q/s", "shards"
    );
    for i in 0..baseline.qps.len() {
        println!(
            "{:>8.0} {:>12.0} {:>7.0} {:>12.0} {:>7.0}",
            baseline.qps[i].0,
            baseline.qps[i].1,
            baseline.shards[i].1,
            managed.qps[i].1,
            managed.shards[i].1
        );
    }

    // Headline scalars over the late-surge windows (the baseline's own
    // join transient excluded).
    let late_from = (scale.surge_start() + scale.surge_secs / 2) as f64;
    let late_to = scale.surge_end() as f64;
    let baseline_ref = mean_over(&baseline.qps, late_from, late_to);
    let recovered = mean_over(&managed.qps, late_from, late_to);
    let overloaded = managed
        .qps
        .iter()
        .find(|&&(t, _)| t > scale.surge_start() as f64)
        .map(|&(_, v)| v)
        .expect("a surge window exists");
    let time_to_recover = managed
        .qps
        .iter()
        .find(|&&(t, v)| t > scale.surge_start() as f64 && v >= 0.8 * baseline_ref)
        .map(|&(t, _)| t - scale.surge_start() as f64)
        .unwrap_or(scale.surge_secs as f64);

    let events = cluster.controller_events();
    let adds = events
        .iter()
        .filter(|e| matches!(e.action, ControllerAction::AddShard { .. }))
        .count();
    let removes = events
        .iter()
        .filter(|e| matches!(e.action, ControllerAction::RemoveShard { .. }))
        .count();
    println!(
        "\nbaseline late-surge {baseline_ref:.0} q/s | controller recovered {recovered:.0} q/s \
         ({:.0}%) in {time_to_recover:.0}s | fleet {} -> peak {} -> {} | {adds} adds, {removes} removes",
        100.0 * recovered / baseline_ref.max(1e-9),
        scale.start_shards,
        managed
            .shards
            .iter()
            .map(|&(_, n)| n as usize)
            .max()
            .unwrap_or(0),
        managed.final_shards,
    );

    let mut fig = Figure::new(
        id,
        "Self-tuning elasticity: controller vs hand-scheduled fleet through a flash crowd",
        "simulated seconds",
        "updates/s / shards",
    );
    let mut s = Series::new("baseline client QPS");
    for &(t, v) in &baseline.qps {
        s.push(t, v);
    }
    fig.add(s);
    let mut s = Series::new("controller client QPS");
    for &(t, v) in &managed.qps {
        s.push(t, v);
    }
    fig.add(s);
    let mut s = Series::new("baseline live shards (noisy)");
    for &(t, v) in &baseline.shards {
        s.push(t, v);
    }
    fig.add(s);
    let mut s = Series::new("controller live shards (noisy)");
    for &(t, v) in &managed.shards {
        s.push(t, v);
    }
    fig.add(s);
    let mut s = Series::new("recovered QPS");
    s.push(0.0, recovered);
    fig.add(s);
    let mut s = Series::new("time-to-recover secs (noisy)");
    s.push(0.0, time_to_recover);
    fig.add(s);
    fig.print();
    fig.save().expect("save");

    // ---- acceptance bars (deterministic virtual-time numbers) ----
    // Both arms see the same seeded stream, so school shedding matches
    // and cancels out of the arm-vs-arm comparison.
    assert_eq!(baseline.shed, managed.shed, "arms diverged on shedding");
    assert_eq!(baseline.final_shards, scale.start_shards);
    // The surge really overloads the unscaled fleet — without this the
    // recovery bars would be vacuous.
    assert!(
        overloaded < 0.9 * baseline_ref,
        "first surge window {overloaded:.0} q/s vs baseline {baseline_ref:.0}: no overload signal"
    );
    // Recovery: ≥ 80% of the perfect operator's steady state, no
    // operator calls (this arm never touches add_shard/remove_shard).
    assert!(
        recovered >= 0.8 * baseline_ref,
        "controller recovered {recovered:.0} q/s < 80% of baseline {baseline_ref:.0}"
    );
    // Scale-back: the crowd left, the fleet follows.
    assert!(
        (managed.final_shards as i64 - scale.start_shards as i64).abs() <= 1,
        "controller ended at {} shards, started at {}",
        managed.final_shards,
        scale.start_shards
    );
    // The decision log shows a real round trip under hysteresis.
    assert!(adds >= 1, "no scale-up decisions: {events:?}");
    assert!(removes >= 1, "no scale-down decisions: {events:?}");
    let scale_times: Vec<f64> = events
        .iter()
        .filter(|e| e.action.is_scaling())
        .map(|e| e.at_secs)
        .collect();
    for pair in scale_times.windows(2) {
        let gap = pair[1] - pair[0];
        assert!(
            gap == 0.0 || gap >= scale.controller.cooldown_secs - 1e-9,
            "scale decisions {gap}s apart violate the cool-down"
        );
    }
    drop(base_cluster);
    println!(
        "controller recovered {:.0}% of the hand-scheduled baseline in {time_to_recover:.0}s and scaled back down",
        100.0 * recovered / baseline_ref.max(1e-9)
    );
}
