//! Figure 18 (repo extension) — batched, pipelined ingestion vs the
//! synchronous per-call tier.
//!
//! §4.1's cost model gives batched writes a steep discount: a MutateRows
//! RPC pays the 15 µs base once for the whole batch plus ~0.5 µs per row,
//! where per-call writes pay the base *per update*. The pipelined tier
//! ([`MoistCluster::submit`] + bounded per-shard queues + batched
//! [`MoistCluster::update_batch`] apply) exists to harvest that discount;
//! this bin measures how much of it survives end to end on the §4.1
//! road-network workload.
//!
//! Two sweeps, both against the synchronous [`MoistCluster::update`] path
//! as the baseline tier:
//!
//! * **scale-out** — client-visible QPS vs shard count (1/2/4/5/10) for
//!   both tiers. Asserts the pipelined tier beats the baseline at the
//!   largest fleet by ≥ 2× (full) / ≥ 1.2× (smoke).
//! * **latency-vs-throughput** — at the largest fleet, batch size ×
//!   in-flight limit (`queue_cap = batch × in-flight`) trade queue wait
//!   against batching efficiency: bigger batches amortize more RPC base
//!   but strand updates in the buffer longer.
//!
//! Unlike fig14, **store QPS here is deliberately uncapped** (no
//! [`STORE_WRITE_CAPACITY_OPS`] clip, which models a per-op write
//! ceiling): the batch discount's whole point is that one MutateRows RPC
//! carries many updates past a per-op ceiling, so clipping both tiers at
//! the per-op cap would erase exactly the effect under measurement. The
//! baseline is derived uncapped too, so the comparison stays apples to
//! apples. Client-visible QPS divides by the *school* shed ratio only —
//! overload sheds and backpressure are separate [`IngestStats`] counters
//! (none fire at these queue depths; asserted below) and never inflate
//! the client-visible rate.

use moist::bigtable::{Bigtable, Timestamp};
use moist::core::{
    IngestConfig, IngestStats, MoistCluster, MoistConfig, MoistError, ObjectId, ServerStats,
    UpdateMessage,
};
use moist::workload::{ClientPool, RoadMap, RoadMapConfig, RoadNetSim, SimConfig};
use moist_bench::{smoke_mode, Figure, Series};
use std::sync::Mutex;

struct Scale {
    shard_counts: Vec<usize>,
    clients: usize,
    agents_per_client: u64,
    warmup_secs: f64,
    measure_secs: f64,
    /// `(batch_size, in_flight)` points for the latency/throughput sweep,
    /// run at the largest shard count.
    sweep: Vec<(usize, usize)>,
    /// Required pipelined-over-baseline client-QPS ratio at the largest
    /// shard count.
    min_speedup: f64,
}

impl Scale {
    fn full() -> Self {
        Scale {
            shard_counts: vec![1, 2, 4, 5, 10],
            clients: 4,
            agents_per_client: 1200,
            warmup_secs: 60.0,
            measure_secs: 240.0,
            sweep: vec![(16, 2), (16, 8), (64, 2), (64, 8), (256, 2), (256, 8)],
            min_speedup: 2.0,
        }
    }

    fn smoke() -> Self {
        Scale {
            shard_counts: vec![1, 2, 4],
            clients: 2,
            agents_per_client: 300,
            warmup_secs: 30.0,
            measure_secs: 60.0,
            sweep: vec![(8, 2), (8, 4), (32, 2), (32, 4)],
            min_speedup: 1.2,
        }
    }
}

/// Counter deltas between two aggregate snapshots.
fn delta(after: &ServerStats, before: &ServerStats) -> ServerStats {
    ServerStats {
        updates: after.updates - before.updates,
        shed: after.shed - before.shed,
        leader_updates: after.leader_updates - before.leader_updates,
        registered: after.registered - before.registered,
        departures: after.departures - before.departures,
        nn_queries: after.nn_queries - before.nn_queries,
        cluster_runs: after.cluster_runs - before.cluster_runs,
    }
}

/// Ingest counter deltas over the measurement window (`queued` is a live
/// gauge, not a counter; both snapshots are taken after a drain so it is
/// zero on each side).
fn ingest_delta(after: &IngestStats, before: &IngestStats) -> IngestStats {
    IngestStats {
        submitted: after.submitted - before.submitted,
        enqueued: after.enqueued - before.enqueued,
        backpressure: after.backpressure - before.backpressure,
        overload_shed: after.overload_shed - before.overload_shed,
        batches: after.batches - before.batches,
        flushed_updates: after.flushed_updates - before.flushed_updates,
        size_flushes: after.size_flushes - before.size_flushes,
        deadline_flushes: after.deadline_flushes - before.deadline_flushes,
        drain_flushes: after.drain_flushes - before.drain_flushes,
        max_batch: after.max_batch,
        queue_wait_us: after.queue_wait_us - before.queue_wait_us,
        queued: after.queued,
    }
}

struct Measured {
    store_qps: f64,
    client_qps: f64,
    shed: f64,
    /// Mean virtual µs an update sat buffered before its batch flushed
    /// (zero for the synchronous tier).
    queue_wait_us: f64,
    /// Mean virtual µs of shard apply time charged per update.
    apply_us: f64,
    avg_batch: f64,
    /// Typed-backpressure rejections the submitters retried through.
    backpressure: u64,
}

/// Drives every simulator to `until` in `tick`-second steps. `pipelined`
/// selects the submission path: `false` routes through the synchronous
/// [`MoistCluster::update`], `true` through [`MoistCluster::submit`] with
/// a deadline-flush tick per worker. Backpressure (only reachable when a
/// sweep point sets a tight in-flight limit) is handled the way a real
/// client would: flush what is due and retry.
fn drive(
    cluster: &MoistCluster,
    sims: &[Mutex<RoadNetSim>],
    until: f64,
    tick: f64,
    pipelined: bool,
) {
    let shards = cluster.num_shards();
    ClientPool::run(sims.len(), |i| {
        let mut sim = sims[i].lock().expect("sim lock");
        let oid_base = i as u64 * 10_000_000;
        let mut t = sim.now_secs();
        while t < until {
            t = (t + tick).min(until);
            for u in sim.advance_until(t) {
                let msg = UpdateMessage {
                    oid: ObjectId(oid_base + u.oid),
                    loc: u.loc,
                    vel: u.vel,
                    ts: Timestamp::from_secs_f64(u.at_secs),
                };
                if pipelined {
                    loop {
                        match cluster.submit(&msg) {
                            Ok(_) => break,
                            Err(MoistError::Backpressure { .. }) => {
                                cluster
                                    .flush_due(Timestamp::from_secs_f64(t))
                                    .expect("flush");
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("submit: {e}"),
                        }
                    }
                } else {
                    cluster.update(&msg).expect("update");
                }
            }
            if pipelined {
                cluster
                    .flush_due(Timestamp::from_secs_f64(t))
                    .expect("flush");
            }
            let mut shard = i;
            while shard < shards {
                cluster
                    .run_due_clustering_shard(shard, Timestamp::from_secs_f64(t))
                    .expect("clustering");
                shard += sims.len();
            }
        }
    });
    if pipelined {
        cluster.drain_ingest().expect("drain");
    }
}

fn run_one(shards: usize, scale: &Scale, ingest: Option<IngestConfig>) -> Measured {
    let store = Bigtable::new();
    let cfg = MoistConfig {
        epsilon: 50.0,
        delta_m: 2.0,
        clustering_level: 3,
        cluster_interval_secs: 10.0,
        ..MoistConfig::default()
    };
    let pipelined = ingest.is_some();
    let mut builder = MoistCluster::builder(&store, cfg).shards(shards);
    if let Some(icfg) = ingest {
        builder = builder.ingest(icfg);
    }
    let cluster = builder.build().expect("cluster");
    let sims: Vec<Mutex<RoadNetSim>> = (0..scale.clients)
        .map(|i| {
            Mutex::new(RoadNetSim::new(
                RoadMap::new(RoadMapConfig::default()),
                SimConfig {
                    agents: scale.agents_per_client,
                    seed: 4000 + i as u64,
                    ..SimConfig::default()
                },
            ))
        })
        .collect();
    // Warm-up: register everyone and let schools form, then measure from a
    // clean clock and clean (drained) queues.
    drive(&cluster, &sims, scale.warmup_secs, 5.0, pipelined);
    cluster.reset_clocks();
    let before = cluster.stats();
    let ingest_before = cluster.ingest_stats();
    drive(
        &cluster,
        &sims,
        scale.warmup_secs + scale.measure_secs,
        5.0,
        pipelined,
    );
    let d = delta(&cluster.stats(), &before);
    assert!(d.balanced(), "outcome counters must sum: {d:?}");
    let di = ingest_delta(&cluster.ingest_stats(), &ingest_before);
    if pipelined {
        assert_eq!(di.queued, 0, "measurement must end drained");
        assert_eq!(
            di.flushed_updates, d.updates,
            "every applied update must have gone through the queues"
        );
        assert_eq!(di.overload_shed, 0, "Reject policy must never shed");
    }
    // Cross-layer consistency: the tier's folded load-loss signal must
    // equal the independently read school-shed + queue-loss counters, or
    // a client-QPS derivation somewhere is lying about lost updates.
    let cs = cluster.cluster_stats(Timestamp::from_secs_f64(
        scale.warmup_secs + scale.measure_secs,
    ));
    let ingest_all = cluster.ingest_stats();
    assert_eq!(
        cs.shed_or_backpressure(),
        cluster.stats().shed + ingest_all.backpressure + ingest_all.overload_shed,
        "ClusterStats must fold every load-loss signal"
    );

    let busiest_secs = cluster.max_elapsed_us() / 1e6;
    let non_shed = (d.updates - d.shed) as f64;
    // Deliberately uncapped — see the module doc. The shed ratio is the
    // *school* ratio only; overload sheds live in `di.overload_shed` and
    // are excluded by construction.
    let store_qps = non_shed / busiest_secs.max(1e-9);
    let shed = d.shed as f64 / d.updates.max(1) as f64;
    let client_qps = store_qps / (1.0 - shed).max(0.05);
    Measured {
        store_qps,
        client_qps,
        shed,
        queue_wait_us: di.avg_queue_wait_us(),
        apply_us: cluster.total_elapsed_us() / (d.updates.max(1)) as f64,
        avg_batch: di.avg_batch(),
        backpressure: di.backpressure,
    }
}

fn main() {
    let smoke = smoke_mode();
    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    let id = if smoke {
        "fig18_ingest_smoke"
    } else {
        "fig18_ingest"
    };
    let pipe_cfg = IngestConfig {
        batch_size: if smoke { 32 } else { 64 },
        ..IngestConfig::default()
    };

    let mut fig = Figure::new(
        id,
        "Pipelined ingestion: client-visible QPS vs shards, and batch-size/in-flight latency trade (road network)",
        "shards (scale-out series) / batch size (sweep series)",
        "updates/s (QPS series) / virtual us (latency series)",
    );
    let mut base_series = Series::new("baseline client QPS");
    let mut pipe_series = Series::new("pipelined client QPS");

    println!(
        "{:>6}  {:>10}  {:>10}  {:>10}  {:>10}  {:>7}  {:>9}  {:>9}",
        "shards", "base st/s", "pipe st/s", "base q/s", "pipe q/s", "ratio", "wait us", "batch"
    );
    let mut last_ratio = 0.0;
    for &n in &scale.shard_counts {
        let base = run_one(n, &scale, None);
        let pipe = run_one(n, &scale, Some(pipe_cfg));
        last_ratio = pipe.client_qps / base.client_qps.max(1e-9);
        println!(
            "{n:>6}  {:>10.0}  {:>10.0}  {:>10.0}  {:>10.0}  {:>6.2}x  {:>9.1}  {:>9.1}",
            base.store_qps,
            pipe.store_qps,
            base.client_qps,
            pipe.client_qps,
            last_ratio,
            pipe.queue_wait_us,
            pipe.avg_batch
        );
        debug_assert!(base.shed <= 1.0 && pipe.shed <= 1.0);
        base_series.push(n as f64, base.client_qps);
        pipe_series.push(n as f64, pipe.client_qps);
    }
    fig.add(base_series);
    fig.add(pipe_series);

    // Latency-vs-throughput sweep at the largest fleet: one QPS series and
    // one end-to-end latency series (queue wait + amortized apply) per
    // in-flight limit, indexed by batch size.
    let &max_shards = scale.shard_counts.last().expect("shard counts");
    println!("\nsweep at {max_shards} shards (batch x in-flight):");
    println!(
        "{:>6}  {:>9}  {:>10}  {:>9}  {:>9}  {:>6}",
        "batch", "in-flight", "pipe q/s", "wait us", "apply us", "bp"
    );
    let mut sweep_qps: Vec<(usize, Series)> = Vec::new();
    let mut sweep_lat: Vec<(usize, Series)> = Vec::new();
    for &(batch, in_flight) in &scale.sweep {
        let m = run_one(
            max_shards,
            &scale,
            Some(IngestConfig {
                batch_size: batch,
                queue_cap: batch * in_flight,
                ..IngestConfig::default()
            }),
        );
        println!(
            "{batch:>6}  {in_flight:>9}  {:>10.0}  {:>9.1}  {:>9.1}  {:>6}",
            m.client_qps, m.queue_wait_us, m.apply_us, m.backpressure
        );
        let qps = match sweep_qps.iter_mut().find(|(k, _)| *k == in_flight) {
            Some((_, s)) => s,
            None => {
                sweep_qps.push((
                    in_flight,
                    Series::new(format!("sweep client QPS (in-flight {in_flight})")),
                ));
                &mut sweep_qps.last_mut().expect("just pushed").1
            }
        };
        qps.push(batch as f64, m.client_qps);
        let lat = match sweep_lat.iter_mut().find(|(k, _)| *k == in_flight) {
            Some((_, s)) => s,
            None => {
                // `(noisy)` opts the series out of the CI drop gate:
                // latency is lower-is-better, so a batching *improvement*
                // would read as a >15% "drop" and fail the job.
                sweep_lat.push((
                    in_flight,
                    Series::new(format!("sweep latency us (in-flight {in_flight}) (noisy)")),
                ));
                &mut sweep_lat.last_mut().expect("just pushed").1
            }
        };
        lat.push(batch as f64, m.queue_wait_us + m.apply_us);
    }
    for (_, s) in sweep_qps {
        fig.add(s);
    }
    for (_, s) in sweep_lat {
        fig.add(s);
    }
    fig.print();
    fig.save().expect("save");

    assert!(
        last_ratio >= scale.min_speedup,
        "pipelined tier must beat the synchronous baseline by >= {:.1}x at {} shards (got {:.2}x)",
        scale.min_speedup,
        max_shards,
        last_ratio
    );
    println!(
        "pipelined ingestion beats the synchronous tier {last_ratio:.2}x at {max_shards} shards"
    );
}
