//! Figure 16 (repo extension) — load-aware placement under a hot-spot
//! workload.
//!
//! The paper's load is skewed by construction: "business centers" draw
//! most of the updates and queries (§3.4.2 builds FLAG on exactly that
//! observation), yet unweighted rendezvous placement assigns clustering
//! cells to shards as if all cells cost the same. This bin drives the
//! canonical skew — **80% of updates into ~5% of the clustering cells** —
//! at several fleet sizes and compares, on identically seeded stores:
//!
//! * **baseline** — the pre-load-aware tier: unweighted rendezvous
//!   ownership, no hot-cell splits, no rebalancing;
//! * **load-aware** — the same tier calling
//!   [`MoistCluster::rebalance`] every `REBALANCE_EVERY_SECS` of virtual
//!   time: per-shard weights from measured utilization, hot cells split
//!   one level finer, region fan-out balancing priced by the measured
//!   per-cell rates.
//!
//! Reported per shard count (all virtual-time, fully deterministic — the
//! driver is single-threaded, so the bench gate can trust the numbers):
//!
//! * **client-visible QPS** — `store QPS / (1 − shed)` of the busiest
//!   shard, as in `fig14_scaleout`;
//! * **utilization skew** — busiest-shard elapsed over mean elapsed
//!   ([`moist::core::ClusterStats::utilization_skew`]); 1.0 is a level
//!   fleet;
//! * **whole-map region fan-out speedup** — scatter-gather vs anchor
//!   routing on the load-aware cluster, which must stay at least as good
//!   as `fig15_fanout`'s bar (slice balancing should *raise* it).
//!
//! The full run asserts the acceptance bars at 10 shards: load-aware
//! beats the baseline on client-visible QPS, cuts utilization skew ≥ 2×,
//! and keeps the whole-map fan-out speedup ≥ 2×.

use moist::bigtable::{Bigtable, Timestamp};
use moist::core::{MoistCluster, MoistConfig, ObjectId, UpdateMessage};
use moist::spatial::{Point, Velocity};
use moist_bench::{smoke_mode, Figure, Series, STORE_WRITE_CAPACITY_OPS};

/// Virtual seconds between rebalance steps on the load-aware cluster.
const REBALANCE_EVERY_SECS: u64 = 10;

struct Scale {
    shard_counts: Vec<usize>,
    objects: u64,
    warmup_secs: u64,
    measure_secs: u64,
    updates_per_sec: u64,
    /// Business centers taking 80% of the traffic, each inside one
    /// clustering cell at level 3 (64 cells ⇒ 3 spots ≈ 5% of the map).
    hot_spots: &'static [(f64, f64)],
}

impl Scale {
    fn full() -> Self {
        Scale {
            shard_counts: vec![4, 10],
            objects: 4_000,
            warmup_secs: 60,
            measure_secs: 180,
            updates_per_sec: 400,
            hot_spots: &[(187.0, 187.0), (687.0, 312.0), (437.0, 812.0)],
        }
    }

    fn smoke() -> Self {
        Scale {
            shard_counts: vec![4],
            objects: 800,
            warmup_secs: 40,
            measure_secs: 80,
            updates_per_sec: 120,
            // One business center: at 4 shards a 3-spot hot set already
            // spreads evenly by hash, so the smoke run concentrates the
            // skew to keep the (cheap) scenario meaningful.
            hot_spots: &[(187.0, 187.0)],
        }
    }
}

fn config() -> MoistConfig {
    MoistConfig {
        epsilon: 50.0,
        delta_m: 2.0,
        clustering_level: 3,
        cluster_interval_secs: 10.0,
        ..MoistConfig::default()
    }
}

/// Deterministic xorshift stream.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One update of the hot-spot stream: 80% of traffic jitters around the
/// business centers (object ids partitioned per spot so schools can form
/// and shed), 20% scatters uniformly.
fn skewed_update(rng: &mut Rng, scale: &Scale, at_secs: f64) -> UpdateMessage {
    let objects = scale.objects;
    let spots = scale.hot_spots;
    let hot = rng.next() < 0.8;
    let (oid, x, y) = if hot {
        let spot = (rng.next() * spots.len() as f64) as usize % spots.len();
        let (cx, cy) = spots[spot];
        // Stay well inside the 125-unit clustering cell.
        let oid_pool = objects * 8 / 10 / spots.len() as u64;
        let oid = spot as u64 * oid_pool + (rng.next() * oid_pool as f64) as u64;
        (
            oid,
            cx + rng.next() * 40.0 - 20.0,
            cy + rng.next() * 40.0 - 20.0,
        )
    } else {
        let oid = objects * 8 / 10 + (rng.next() * (objects / 5) as f64) as u64;
        (oid, 5.0 + rng.next() * 990.0, 5.0 + rng.next() * 990.0)
    };
    UpdateMessage {
        oid: ObjectId(oid),
        loc: Point::new(x, y),
        vel: Velocity::ZERO,
        ts: Timestamp::from_secs_f64(at_secs),
    }
}

struct Measured {
    client_qps: f64,
    skew: f64,
    fanout_speedup: f64,
    fanout_cost_us: f64,
    split_cells: usize,
}

/// Drives the hot-spot stream against one cluster for `[from, to)`
/// virtual seconds, ticking clustering (and, when `rebalance` is set,
/// the load-aware rebalance step) once per second.
fn drive(
    cluster: &MoistCluster,
    rng: &mut Rng,
    scale: &Scale,
    from: u64,
    to: u64,
    rebalance: bool,
) {
    for sec in from..to {
        for i in 0..scale.updates_per_sec {
            let at = sec as f64 + i as f64 / scale.updates_per_sec as f64;
            cluster
                .update(&skewed_update(rng, scale, at))
                .expect("update");
        }
        let now = Timestamp::from_secs(sec + 1);
        cluster.run_due_clustering(now).expect("clustering");
        if rebalance && (sec + 1) % REBALANCE_EVERY_SECS == 0 {
            cluster.rebalance(now).expect("rebalance drain failed");
        }
    }
}

fn run_one(shards: usize, scale: &Scale, rebalance: bool) -> Measured {
    let store = Bigtable::new();
    let cfg = config();
    let cluster = MoistCluster::builder(&store, cfg)
        .shards(shards)
        .build()
        .expect("cluster");
    let mut rng = Rng(0xC0FF_EE00_D15E_A5E5);
    // Warm-up: register the population, let schools form and (load-aware
    // only) let the first rebalances converge, then measure from clean
    // clocks.
    drive(&cluster, &mut rng, scale, 0, scale.warmup_secs, rebalance);
    cluster.reset_clocks();
    let before = cluster.stats();
    drive(
        &cluster,
        &mut rng,
        scale,
        scale.warmup_secs,
        scale.warmup_secs + scale.measure_secs,
        rebalance,
    );
    let after = cluster.stats();
    let end = Timestamp::from_secs(scale.warmup_secs + scale.measure_secs);

    let updates = after.updates - before.updates;
    let shed = (after.shed - before.shed) as f64 / updates.max(1) as f64;
    let busiest_secs = cluster.max_elapsed_us() / 1e6;
    let store_qps =
        ((updates as f64 * (1.0 - shed)) / busiest_secs.max(1e-9)).min(STORE_WRITE_CAPACITY_OPS);
    let client_qps = store_qps / (1.0 - shed).max(0.05);
    let cstats = cluster.cluster_stats(end);
    let skew = cstats.utilization_skew();

    // Whole-map scattered region vs anchor routing on this cluster: the
    // fan-out bar from fig15 must hold (and slice balancing should beat
    // it — the largest owner slice no longer caps the speedup).
    let (anchor_hits, anchor_stats) = cluster.region_anchor(&cfg.space.world, end, 0.0).unwrap();
    let (fan_hits, fan_stats) = cluster.region(&cfg.space.world, end, 0.0).unwrap();
    let a: Vec<u64> = anchor_hits.iter().map(|n| n.oid.0).collect();
    let f: Vec<u64> = fan_hits.iter().map(|n| n.oid.0).collect();
    assert_eq!(a, f, "fan-out must return the anchor answer");
    let fanout_speedup = anchor_stats.cost_us / fan_stats.cost_us.max(1e-9);
    if std::env::var("FIG16_DEBUG").is_ok() {
        eprintln!(
            "[debug] rebalance={rebalance} fan={fan_stats:?} anchor={anchor_stats:?} splits={:?} weights={:?}",
            cluster.split_cells(),
            cluster.shard_weights()
        );
    }

    Measured {
        client_qps,
        skew,
        fanout_speedup,
        fanout_cost_us: fan_stats.cost_us,
        split_cells: cluster.split_cells().len(),
    }
}

fn main() {
    let smoke = smoke_mode();
    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    let id = if smoke {
        "fig16_skew_smoke"
    } else {
        "fig16_skew"
    };
    let mut fig = Figure::new(
        id,
        "Hot-spot skew (80% of updates in ~5% of cells): load-aware vs unweighted placement",
        "shards",
        "updates/s (virtual) / ratio (x)",
    );
    let mut base_qps_series = Series::new("baseline client QPS");
    let mut aware_qps_series = Series::new("load-aware client QPS");
    let mut skew_cut_series = Series::new("skew cut (x)");
    let mut fanout_series = Series::new("load-aware fan-out speedup (x)");
    println!(
        "{:>7} {:>14} {:>14} {:>10} {:>10} {:>9} {:>8} {:>8}",
        "shards",
        "base q/s",
        "aware q/s",
        "base skew",
        "aware skew",
        "skew cut",
        "fanout",
        "splits"
    );
    let mut headline: Option<(Measured, Measured)> = None;
    for &shards in &scale.shard_counts {
        let base = run_one(shards, &scale, false);
        let aware = run_one(shards, &scale, true);
        let skew_cut = base.skew / aware.skew.max(1e-9);
        println!(
            "{shards:>7} {:>14.0} {:>14.0} {:>10.2} {:>10.2} {:>8.2}x {:>7.2}x {:>8}",
            base.client_qps,
            aware.client_qps,
            base.skew,
            aware.skew,
            skew_cut,
            aware.fanout_speedup,
            aware.split_cells
        );
        base_qps_series.push(shards as f64, base.client_qps);
        aware_qps_series.push(shards as f64, aware.client_qps);
        skew_cut_series.push(shards as f64, skew_cut);
        fanout_series.push(shards as f64, aware.fanout_speedup);
        if shards == *scale.shard_counts.last().unwrap() {
            headline = Some((base, aware));
        }
    }
    fig.add(base_qps_series);
    fig.add(aware_qps_series);
    fig.add(skew_cut_series);
    fig.add(fanout_series);
    fig.print();
    fig.save().expect("save");

    // Acceptance bars at the largest fleet (virtual-time numbers from a
    // single-threaded driver: deterministic, safe to assert on).
    let (base, aware) = headline.expect("at least one shard count");
    let skew_bar = if smoke { 1.3 } else { 2.0 };
    assert!(
        aware.client_qps >= base.client_qps,
        "load-aware QPS {:.0} must beat the unweighted baseline {:.0}",
        aware.client_qps,
        base.client_qps
    );
    let skew_cut = base.skew / aware.skew.max(1e-9);
    assert!(
        skew_cut >= skew_bar,
        "skew cut {skew_cut:.2}x is below the {skew_bar}x bar ({:.2} -> {:.2})",
        base.skew,
        aware.skew
    );
    // Whole-map scattered-region latency must be no worse than the PR-4
    // tier's on the same store (small tolerance for extra range headers
    // the balancer introduces). The uniform-workload ≥2x speedup bar
    // stays enforced by fig15_fanout itself.
    assert!(
        aware.fanout_cost_us <= base.fanout_cost_us * 1.05,
        "load-aware whole-map fan-out {:.0}us regressed vs the unweighted tier's {:.0}us",
        aware.fanout_cost_us,
        base.fanout_cost_us
    );
    assert!(
        aware.split_cells > 0,
        "the hot-spot workload must split at least one cell"
    );
    println!(
        "load-aware at {} shards: {:.2}x QPS, {skew_cut:.2}x skew cut, {:.2}x fan-out",
        scale.shard_counts.last().unwrap(),
        aware.client_qps / base.client_qps.max(1e-9),
        aware.fanout_speedup
    );
}
