//! Figure 19 (repo extension) — the price of durability and the cost of
//! coming back.
//!
//! The paper runs on production BigTable and gets tablet durability for
//! free; this repo's in-memory store did not, until the per-table WAL
//! landed. This bin quantifies what that WAL costs on the §4.1
//! road-network update workload, across fsync cadences:
//!
//! * **update QPS** — synchronous [`MoistCluster::update`] throughput
//!   under `Durability::None` vs `Durability::Wal` at
//!   `fsync_every ∈ {1, 8, 64, 0}` (0 = no explicit fsync). Group
//!   commit should recover most of the fsync tax; the append + byte
//!   charges remain.
//! * **write amplification** — WAL bytes appended (frame headers
//!   included) per payload byte the tier asked the store to write.
//!   Identical across cadences by construction: the cadence changes
//!   *when* data hits the platter, not how much.
//! * **recovery** — after each durable run the store is dropped
//!   mid-flight (no checkpoint, nothing graceful) and
//!   [`MoistCluster::recover`] replays the full log; the replay is
//!   priced with [`CostProfile::replay_us`]. A checkpoint on the
//!   recovered tier then truncates the logs, and a second recovery must
//!   replay exactly zero records — the snapshot path, measured.
//!
//! The `Durability::None` QPS series doubles as the regression sentinel
//! for the acceptance bar "fig13–18 unchanged with durability off": it
//! runs the same update path those figures exercise and sits in the CI
//! drop gate. Amplification and recovery series are `(noisy)`-exempt —
//! both are lower-is-better, so an improvement would read as a >15%
//! "drop" and fail the job.

use moist::bigtable::{Bigtable, CostProfile, Durability, StoreConfig, Timestamp};
use moist::core::{MoistCluster, MoistConfig, ObjectId, UpdateMessage};
use moist::workload::{ClientPool, RoadMap, RoadMapConfig, RoadNetSim, SimConfig};
use moist_bench::{smoke_mode, Figure, Series};
use std::path::PathBuf;
use std::sync::Mutex;

struct Scale {
    shards: usize,
    clients: usize,
    agents_per_client: u64,
    warmup_secs: f64,
    measure_secs: f64,
}

impl Scale {
    fn full() -> Self {
        Scale {
            shards: 4,
            clients: 2,
            agents_per_client: 800,
            warmup_secs: 30.0,
            measure_secs: 120.0,
        }
    }

    fn smoke() -> Self {
        Scale {
            shards: 2,
            clients: 2,
            agents_per_client: 200,
            warmup_secs: 10.0,
            measure_secs: 30.0,
        }
    }
}

fn tier_config() -> MoistConfig {
    MoistConfig {
        epsilon: 50.0,
        delta_m: 2.0,
        clustering_level: 3,
        cluster_interval_secs: 10.0,
        ..MoistConfig::default()
    }
}

/// One durability setting under test: `None` is the in-memory baseline,
/// `Some(n)` is `Durability::Wal { fsync_every: n }`.
struct Setting {
    label: &'static str,
    fsync_every: Option<u64>,
}

const SETTINGS: &[Setting] = &[
    Setting {
        label: "none",
        fsync_every: None,
    },
    Setting {
        label: "wal fsync=1",
        fsync_every: Some(1),
    },
    Setting {
        label: "wal fsync=8",
        fsync_every: Some(8),
    },
    Setting {
        label: "wal fsync=64",
        fsync_every: Some(64),
    },
    Setting {
        label: "wal nofsync",
        fsync_every: Some(0),
    },
];

fn wal_dir(label: &str) -> PathBuf {
    let slug: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    std::env::temp_dir().join(format!("moist_fig19_{}_{slug}", std::process::id()))
}

fn store_config(setting: &Setting, dir: &std::path::Path) -> StoreConfig {
    let durability = match setting.fsync_every {
        None => Durability::None,
        Some(every) => Durability::Wal {
            dir: dir.to_path_buf(),
            fsync_every: every,
        },
    };
    StoreConfig {
        durability,
        ..StoreConfig::default()
    }
}

/// Drives every simulator to `until` in 5-second steps through the
/// synchronous update path, interleaving due clustering runs.
fn drive(cluster: &MoistCluster, sims: &[Mutex<RoadNetSim>], until: f64) {
    let shards = cluster.num_shards();
    ClientPool::run(sims.len(), |i| {
        let mut sim = sims[i].lock().expect("sim lock");
        let oid_base = i as u64 * 10_000_000;
        let mut t = sim.now_secs();
        while t < until {
            t = (t + 5.0).min(until);
            for u in sim.advance_until(t) {
                cluster
                    .update(&UpdateMessage {
                        oid: ObjectId(oid_base + u.oid),
                        loc: u.loc,
                        vel: u.vel,
                        ts: Timestamp::from_secs_f64(u.at_secs),
                    })
                    .expect("update");
            }
            let mut shard = i;
            while shard < shards {
                cluster
                    .run_due_clustering_shard(shard, Timestamp::from_secs_f64(t))
                    .expect("clustering");
                shard += sims.len();
            }
        }
    });
}

struct Measured {
    store_qps: f64,
    /// WAL bytes per payload byte written (0 for `Durability::None`).
    write_amp: f64,
    /// Modelled replay cost of a crash recovery, virtual ms
    /// (0 for `Durability::None`, which has nothing to recover).
    recovery_ms: f64,
    replayed_records: u64,
}

fn run_one(setting: &Setting, scale: &Scale) -> Measured {
    let dir = wal_dir(setting.label);
    let _ = std::fs::remove_dir_all(&dir);
    let store = Bigtable::with_config(store_config(setting, &dir));
    let cluster = MoistCluster::builder(&store, tier_config())
        .shards(scale.shards)
        .build()
        .expect("cluster");
    let sims: Vec<Mutex<RoadNetSim>> = (0..scale.clients)
        .map(|i| {
            Mutex::new(RoadNetSim::new(
                RoadMap::new(RoadMapConfig::default()),
                SimConfig {
                    agents: scale.agents_per_client,
                    seed: 9000 + i as u64,
                    ..SimConfig::default()
                },
            ))
        })
        .collect();
    drive(&cluster, &sims, scale.warmup_secs);
    cluster.reset_clocks();
    let before = cluster.stats();
    let m_before = store.metrics_snapshot();
    drive(&cluster, &sims, scale.warmup_secs + scale.measure_secs);
    let updates = cluster.stats().updates - before.updates;
    let shed = cluster.stats().shed - before.shed;
    assert!(updates > 0, "workload produced no updates");
    let m = store.metrics_snapshot().delta(&m_before);
    let busiest_secs = cluster.max_elapsed_us() / 1e6;
    let store_qps = (updates - shed) as f64 / busiest_secs.max(1e-9);
    let write_amp = m.wal_bytes as f64 / m.bytes_written.max(1) as f64;

    if setting.fsync_every.is_none() {
        assert_eq!(m.wal_appends, 0, "Durability::None must never touch a WAL");
        return Measured {
            store_qps,
            write_amp: 0.0,
            recovery_ms: 0.0,
            replayed_records: 0,
        };
    }
    assert!(m.wal_appends > 0 && m.wal_bytes > 0);

    // Crash: drop the tier and the store mid-flight, then come back.
    drop(cluster);
    drop(store);
    let profile = CostProfile::default();
    let (_store, recovered, report) = MoistCluster::builder(&Bigtable::new(), tier_config())
        .shards(scale.shards)
        .recover(store_config(setting, &dir))
        .expect("recover");
    assert!(report.tables >= 3, "MOIST tables must recover: {report:?}");
    assert!(report.replayed_records > 0, "crash must leave a log tail");
    let recovery_ms = profile.replay_us(report.replayed_records, report.replayed_bytes) / 1e3;

    // Checkpoint the recovered tier; a second recovery must be pure
    // snapshot load — zero records replayed.
    recovered.checkpoint().expect("checkpoint");
    drop(recovered);
    let (_store2, _again, report2) = MoistCluster::builder(&Bigtable::new(), tier_config())
        .shards(scale.shards)
        .recover(store_config(setting, &dir))
        .expect("re-recover");
    assert_eq!(
        report2.replayed_records, 0,
        "checkpoint must truncate the logs: {report2:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
    Measured {
        store_qps,
        write_amp,
        recovery_ms,
        replayed_records: report.replayed_records,
    }
}

fn main() {
    let smoke = smoke_mode();
    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    let id = if smoke {
        "fig19_durability_smoke"
    } else {
        "fig19_durability"
    };

    let mut fig = Figure::new(
        id,
        "Durability tax and recovery: update QPS by fsync cadence, WAL write amplification, and modelled crash-replay cost (road network)",
        "setting index (0 = none, then wal fsync=1/8/64/none)",
        "updates/s (QPS series) / ratio (amplification) / virtual ms (recovery)",
    );
    let mut qps_series = Series::new("update QPS by durability");
    let mut amp_series = Series::new("WAL write amplification (noisy)");
    let mut rec_series = Series::new("crash recovery virtual ms (noisy)");

    println!(
        "{:>12}  {:>10}  {:>8}  {:>12}  {:>10}",
        "setting", "store q/s", "wal amp", "replayed", "recover ms"
    );
    let mut measured = Vec::new();
    for (idx, setting) in SETTINGS.iter().enumerate() {
        let m = run_one(setting, &scale);
        println!(
            "{:>12}  {:>10.0}  {:>8.2}  {:>12}  {:>10.2}",
            setting.label, m.store_qps, m.write_amp, m.replayed_records, m.recovery_ms
        );
        qps_series.push(idx as f64, m.store_qps);
        if setting.fsync_every.is_some() {
            amp_series.push(idx as f64, m.write_amp);
            rec_series.push(idx as f64, m.recovery_ms);
        }
        measured.push(m);
    }
    fig.add(qps_series);
    fig.add(amp_series);
    fig.add(rec_series);
    fig.print();
    fig.save().expect("save");

    // The tax is real but bounded: per-write fsync costs the most, group
    // commit at 64 recovers most of it, and even fsync=1 keeps more than
    // a third of the in-memory throughput under the default profile.
    let none = measured[0].store_qps;
    let fsync1 = measured[1].store_qps;
    let fsync64 = measured[3].store_qps;
    assert!(
        none > fsync1,
        "durability must cost something: none {none:.0} vs fsync=1 {fsync1:.0}"
    );
    assert!(
        fsync64 > fsync1,
        "group commit must beat per-write fsync: {fsync64:.0} vs {fsync1:.0}"
    );
    assert!(
        fsync1 > none / 3.0,
        "fsync=1 tax implausibly large: {fsync1:.0} vs none {none:.0}"
    );
    for m in &measured[1..] {
        assert!(
            m.write_amp > 1.0,
            "frame headers make amplification exceed 1: {}",
            m.write_amp
        );
    }
    println!(
        "durability tax: fsync=1 keeps {:.0}% of in-memory QPS, fsync=64 keeps {:.0}%",
        100.0 * fsync1 / none,
        100.0 * fsync64 / none
    );
}
