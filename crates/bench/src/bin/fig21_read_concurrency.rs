//! Figure 21 (repo extension) — intra-shard read concurrency: wall-clock
//! read throughput of the lock-split shard (`RwLock<MoistServer>`, query
//! paths on the read guard) against the pre-split exclusive-guard
//! behaviour, under a 90/10 read-heavy mix with writes in flight.
//!
//! Every other figure in this repo measures *virtual* time: the
//! single-threaded driver and the cost model make those numbers
//! deterministic. This one deliberately measures *wall clock*, because
//! the thing under test is the lock itself: before the split every
//! query serialized behind the shard's exclusive guard — behind writes
//! *and behind other queries*; after it, any number of queries share
//! the shard concurrently and only genuine writes exclude them.
//!
//! The workload is the skewed one the paper worries about (§3.4.2's
//! business centers): 4 shards, N reader threads issuing 90% NN reads /
//! 10% updates with 90% of reads aimed at one hot clustering cell, plus
//! one background writer streaming `update_batch` calls at the hot
//! shard and timing each batch. Both modes run the *identical* seeded
//! workload; the only difference is the guard the read path takes:
//!
//! * **exclusive** — reads run under `with_shard` (the write guard),
//!   reproducing the pre-split `Mutex<MoistServer>` serialization;
//! * **lock-split** — reads run under `with_shard_read`, the shipped
//!   query path.
//!
//! Reported per reader count: read QPS in both modes (wall clock ⇒
//! `(noisy)`), the split/exclusive QPS ratio (self-normalizing — the
//! trend gate watches this one), and the in-flight `update_batch` wall
//! latency p50/p95 under the split (noisy).
//!
//! The acceptance bar scales with the parallelism the host actually
//! offers: ≥ 2× (full) / ≥ 1.2× (smoke) at the largest reader count
//! when enough cores exist for readers to overlap; on fewer cores the
//! overlap physically cannot show up in wall QPS, so the bar degrades
//! to a no-regression check (≥ 0.85×) and says so.

use moist::bigtable::Timestamp;
use moist::core::{MoistCluster, MoistConfig, ObjectId, UpdateMessage};
use moist::spatial::{Point, Velocity};
use moist_bench::{smoke_mode, Figure, Series};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const SHARDS: usize = 4;

struct Scale {
    reader_threads: Vec<usize>,
    objects: u64,
    /// Operations (reads + inline updates) per reader thread.
    ops_per_reader: usize,
    /// Messages per background `update_batch`.
    batch: usize,
}

impl Scale {
    fn full() -> Self {
        Scale {
            reader_threads: vec![2, 4, 8],
            objects: 3_000,
            ops_per_reader: 2_000,
            batch: 32,
        }
    }

    fn smoke() -> Self {
        Scale {
            reader_threads: vec![8],
            objects: 600,
            ops_per_reader: 300,
            batch: 32,
        }
    }
}

fn config() -> MoistConfig {
    MoistConfig {
        epsilon: 50.0,
        delta_m: 2.0,
        clustering_level: 3,
        cluster_interval_secs: 10.0,
        ..MoistConfig::default()
    }
}

/// Deterministic xorshift stream.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The hot business center: the center of one level-3 clustering cell.
const HOT_SPOT: (f64, f64) = (187.5, 187.5);

#[derive(Clone, Copy, PartialEq)]
enum ReadGuard {
    /// Pre-split behaviour: queries take the shard's exclusive guard.
    Exclusive,
    /// The shipped path: queries share the shard's read guard.
    Split,
}

/// Registers the population: a third of the objects jittered around the
/// hot cell, the rest uniform.
fn seed(cluster: &MoistCluster, rng: &mut Rng, objects: u64) {
    for oid in 0..objects {
        let (x, y) = if oid < objects / 3 {
            (
                HOT_SPOT.0 + rng.next() * 40.0 - 20.0,
                HOT_SPOT.1 + rng.next() * 40.0 - 20.0,
            )
        } else {
            (5.0 + rng.next() * 990.0, 5.0 + rng.next() * 990.0)
        };
        cluster
            .update(&UpdateMessage {
                oid: ObjectId(oid),
                loc: Point::new(x, y),
                vel: Velocity::ZERO,
                ts: Timestamp::from_secs_f64(oid as f64 / objects as f64),
            })
            .expect("seed update");
    }
}

struct Measured {
    read_qps: f64,
    /// In-flight `update_batch` wall latency percentiles, µs.
    write_p50_us: f64,
    write_p95_us: f64,
}

fn run_one(guard: ReadGuard, readers: usize, scale: &Scale) -> Measured {
    let store = moist::bigtable::Bigtable::new();
    let cluster = Arc::new(
        MoistCluster::builder(&store, config())
            .shards(SHARDS)
            .build()
            .expect("cluster"),
    );
    seed(&cluster, &mut Rng(0x0F16_2101), scale.objects);

    // Background writer: streams hot-shard batches until the readers
    // finish, timing each apply. Its oid pool is disjoint from the
    // readers' so outcomes don't couple.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        let batch_len = scale.batch;
        std::thread::spawn(move || {
            let mut rng = Rng(0x2101_B00C);
            let mut latencies_us = Vec::new();
            let mut tick = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let batch: Vec<UpdateMessage> = (0..batch_len as u64)
                    .map(|i| UpdateMessage {
                        oid: ObjectId(1_000_000 + i),
                        loc: Point::new(
                            HOT_SPOT.0 + rng.next() * 40.0 - 20.0,
                            HOT_SPOT.1 + rng.next() * 40.0 - 20.0,
                        ),
                        vel: Velocity::ZERO,
                        ts: Timestamp::from_secs_f64(100.0 + tick as f64 * 0.01),
                    })
                    .collect();
                let t0 = Instant::now();
                cluster.update_batch(&batch).expect("hot batch");
                latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
                tick += 1;
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
            latencies_us
        })
    };

    let started = Instant::now();
    let reads_total: u64 = {
        let handles: Vec<_> = (0..readers)
            .map(|r| {
                let cluster = Arc::clone(&cluster);
                let ops = scale.ops_per_reader;
                let objects = scale.objects;
                std::thread::spawn(move || {
                    let mut rng = Rng(0x0F16_2100 + r as u64 * 7919);
                    let mut reads = 0u64;
                    let at = Timestamp::from_secs(200);
                    for i in 0..ops {
                        if rng.next() < 0.9 {
                            // 90% of reads on the hot cell, the rest uniform.
                            let center = if rng.next() < 0.9 {
                                Point::new(
                                    HOT_SPOT.0 + rng.next() * 40.0 - 20.0,
                                    HOT_SPOT.1 + rng.next() * 40.0 - 20.0,
                                )
                            } else {
                                Point::new(5.0 + rng.next() * 990.0, 5.0 + rng.next() * 990.0)
                            };
                            let shard = cluster.shard_for_point(&center);
                            let (hits, _) = match guard {
                                ReadGuard::Exclusive => cluster
                                    .with_shard(shard, |s| s.nn(center, 8, at).expect("nn"))
                                    .expect("shard"),
                                ReadGuard::Split => cluster
                                    .with_shard_read(shard, |s| s.nn(center, 8, at).expect("nn"))
                                    .expect("shard"),
                            };
                            assert!(!hits.is_empty(), "seeded map must answer NN");
                            reads += 1;
                        } else {
                            // The 10% write slice, through the real write
                            // path (write guard in both modes).
                            let oid = 10_000 + r as u64 * objects + (i as u64 % objects);
                            cluster
                                .update(&UpdateMessage {
                                    oid: ObjectId(oid),
                                    loc: Point::new(
                                        5.0 + rng.next() * 990.0,
                                        5.0 + rng.next() * 990.0,
                                    ),
                                    vel: Velocity::ZERO,
                                    ts: Timestamp::from_secs(150),
                                })
                                .expect("inline update");
                        }
                    }
                    reads
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("reader")).sum()
    };
    let wall_secs = started.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let mut latencies = writer.join().expect("writer");
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            0.0
        } else {
            latencies[((latencies.len() - 1) as f64 * p) as usize]
        }
    };

    Measured {
        read_qps: reads_total as f64 / wall_secs.max(1e-9),
        write_p50_us: pct(0.50),
        write_p95_us: pct(0.95),
    }
}

fn main() {
    let smoke = smoke_mode();
    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    let id = if smoke {
        "fig21_read_concurrency_smoke"
    } else {
        "fig21_read_concurrency"
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut fig = Figure::new(
        id,
        "Intra-shard read concurrency: lock-split vs exclusive-guard reads, 90/10 mix, writes in flight",
        "reader threads",
        "reads/s (wall) / ratio (x) / us",
    );
    let mut excl_series = Series::new("read QPS exclusive (noisy)");
    let mut split_series = Series::new("read QPS lock-split (noisy)");
    let mut gain_series = Series::new("lock-split read gain (x)");
    let mut p50_series = Series::new("batch p50 us in-flight (noisy)");
    let mut p95_series = Series::new("batch p95 us in-flight (noisy)");

    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>7} {:>10} {:>10}",
        "readers", "guard", "read q/s", "wall-mode", "gain", "batch p50", "batch p95"
    );
    let mut headline = 0.0f64;
    for &readers in &scale.reader_threads {
        let excl = run_one(ReadGuard::Exclusive, readers, &scale);
        let split = run_one(ReadGuard::Split, readers, &scale);
        let gain = split.read_qps / excl.read_qps.max(1e-9);
        for (label, m) in [("exclusive", &excl), ("lock-split", &split)] {
            println!(
                "{readers:>8} {label:>10} {:>12.0} {:>12} {:>7} {:>8.0}us {:>8.0}us",
                m.read_qps,
                "wall",
                if label == "lock-split" {
                    format!("{gain:.2}x")
                } else {
                    "-".into()
                },
                m.write_p50_us,
                m.write_p95_us,
            );
        }
        excl_series.push(readers as f64, excl.read_qps);
        split_series.push(readers as f64, split.read_qps);
        gain_series.push(readers as f64, gain);
        p50_series.push(readers as f64, split.write_p50_us);
        p95_series.push(readers as f64, split.write_p95_us);
        if readers == *scale.reader_threads.last().unwrap() {
            headline = gain;
        }
    }
    fig.add(excl_series);
    fig.add(split_series);
    fig.add(gain_series);
    fig.add(p50_series);
    fig.add(p95_series);
    fig.print();
    fig.save().expect("save");

    // The bar needs real cores: concurrent read guards can only beat a
    // serialized guard in wall QPS when readers actually overlap. On a
    // starved host the honest check is "the split costs nothing".
    let max_readers = *scale.reader_threads.last().unwrap();
    let bar = if cores >= max_readers.min(4) {
        if smoke {
            1.2
        } else {
            2.0
        }
    } else {
        println!(
            "[fig21] only {cores} core(s) available for {max_readers} readers: \
             parallel speedup cannot materialize in wall clock; \
             gating on no-regression (>= 0.85x) instead of the {}x bar",
            if smoke { 1.2 } else { 2.0 }
        );
        0.85
    };
    assert!(
        headline >= bar,
        "lock-split read gain {headline:.2}x at {max_readers} readers is below the {bar}x bar"
    );
    println!(
        "lock-split at {max_readers} readers, 90/10 mix: {headline:.2}x read QPS over the exclusive guard ({cores} cores)"
    );
}
