//! Figure 10 — "Performance of clustering: per-clustering latency" (§4.2.2).
//!
//! * `fig10 a` — latency vs number of pre-clustering leaders with a fixed
//!   number of post-clustering leaders (1k), split into read / computation
//!   / write time;
//! * `fig10 b` — latency vs number of post-clustering leaders with fixed
//!   pre-clustering leaders (10k).
//!
//! Leaders are synthesised directly into one clustering cell with
//! velocities arranged into exactly `post` hexagon bins, so the merge
//! outcome is controlled precisely.

use moist::bigtable::{Bigtable, CostProfile, Timestamp};
use moist::core::{cluster_cell, LfRecord, LocationRecord, MoistConfig, MoistTables, ObjectId};
use moist::spatial::{Point, Velocity};
use moist_bench::{Figure, Series};

/// Builds a store holding `pre` leaders inside one clustering cell whose
/// velocities fall into exactly `post` distinct hexagon bins. Returns the
/// tables and the cell.
fn build(
    pre: usize,
    post: usize,
    cfg: &MoistConfig,
) -> (
    std::sync::Arc<Bigtable>,
    MoistTables,
    moist::spatial::CellId,
) {
    let store = Bigtable::new();
    let tables = MoistTables::create(&store, cfg).expect("tables");
    // Free session: setup must not pollute the measured costs.
    let mut s = store.session_with(CostProfile::free());
    // The clustering cell around the map centre.
    let center = Point::new(500.0, 500.0);
    let cell = cfg.space.cell_at(cfg.clustering_level, &center);
    let cell_rect = {
        let b = cell.bounds(cfg.space.curve);
        let lo = cfg.space.to_world(&Point::new(b.min_x, b.min_y));
        let hi = cfg.space.to_world(&Point::new(b.max_x, b.max_y));
        (lo, hi)
    };
    // `post` well-separated velocity prototypes (spacing 4·Δm ≫ bin size).
    let spacing = cfg.delta_m * 4.0;
    let side = (post as f64).sqrt().ceil() as usize;
    let proto = |g: usize| Velocity::new((g % side) as f64 * spacing, (g / side) as f64 * spacing);
    let mut state = 0x0123_4567_89AB_CDEFu64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let ts = Timestamp::from_secs(1);
    for i in 0..pre {
        let loc = Point::new(
            cell_rect.0.x + rnd() * (cell_rect.1.x - cell_rect.0.x) * 0.999,
            cell_rect.0.y + rnd() * (cell_rect.1.y - cell_rect.0.y) * 0.999,
        );
        let vel = proto(i % post);
        let leaf = cfg.space.leaf_cell(&loc).index;
        let rec = LocationRecord {
            loc,
            vel,
            leaf_index: leaf,
        };
        let oid = ObjectId(i as u64);
        tables.put_location(&mut s, oid, &rec, ts).expect("loc");
        tables
            .spatial_insert(&mut s, leaf, oid, &rec, ts)
            .expect("spatial");
        tables
            .set_lf(
                &mut s,
                oid,
                &LfRecord::Leader {
                    since_us: ts.0,
                    last_leaf: leaf,
                },
                ts,
            )
            .expect("lf");
    }
    (store, tables, cell)
}

fn measure(pre: usize, post: usize) -> moist::core::ClusterReport {
    let cfg = MoistConfig::default();
    let (store, tables, cell) = build(pre, post, &cfg);
    let mut s = store.session(); // real cost profile for the measurement
    cluster_cell(&mut s, &tables, &cfg, cell, Timestamp::from_secs(2)).expect("cluster")
}

fn sweep(id: &str, title: &str, x_label: &str, points: &[(usize, usize)]) {
    let mut fig = Figure::new(id, title, x_label, "latency (ms)");
    let mut read = Series::new("read time");
    let mut compute = Series::new("computation time");
    let mut write = Series::new("write time");
    let mut total = Series::new("total");
    println!("{id}: pre -> post  (merged, followers moved)");
    for &(pre, post) in points {
        let r = measure(pre, post);
        assert_eq!(r.pre_leaders, pre, "setup mismatch");
        assert_eq!(r.post_leaders, post, "merge outcome mismatch");
        let x = if id.ends_with('a') { pre } else { post } as f64;
        read.push(x, r.read_us / 1000.0);
        compute.push(x, r.compute_us / 1000.0);
        write.push(x, r.write_us / 1000.0);
        total.push(x, r.total_us() / 1000.0);
        println!(
            "  {pre:>6} -> {post:>5}: read {:>8.2} ms | compute {:>6.2} ms | write {:>8.2} ms",
            r.read_us / 1000.0,
            r.compute_us / 1000.0,
            r.write_us / 1000.0
        );
    }
    fig.add(read);
    fig.add(compute);
    fig.add(write);
    fig.add(total);
    fig.print();
    fig.save().expect("save");
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    if arg == "a" || arg == "all" {
        sweep(
            "fig10a",
            "Clustering latency vs #pre-clustering leaders (post fixed at 1k)",
            "pre-clustering leaders",
            &[
                (2_000, 1_000),
                (4_000, 1_000),
                (6_000, 1_000),
                (8_000, 1_000),
                (10_000, 1_000),
            ],
        );
    }
    if arg == "b" || arg == "all" {
        sweep(
            "fig10b",
            "Clustering latency vs #post-clustering leaders (pre fixed at 10k)",
            "post-clustering leaders",
            &[
                (10_000, 1_000),
                (10_000, 2_000),
                (10_000, 4_000),
                (10_000, 6_000),
                (10_000, 8_000),
            ],
        );
    }
}
