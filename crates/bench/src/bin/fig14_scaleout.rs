//! Figure 14 (repo extension) — front-end scale-out on the road network.
//!
//! The paper's deployment-shape claim (§4.3.3): update throughput scales
//! with the number of front-end servers sharing one BigTable until the
//! store's write capacity caps it, and object schools multiply the
//! *client-visible* rate on top — "with 10 servers and object schools,
//! MOIST achieves update QPS of 60k, a nearly 80x speedup over Bx-tree".
//!
//! This bin drives a [`MoistCluster`] of 1/2/4/5/10 shards with a
//! [`ClientPool`] of OS threads (real lock contention on the shared
//! store) over the §4.1 road-network workload. Updates route to shards by
//! clustering-cell hash; each shard lazily clusters only the cells it
//! owns. Reported per shard count:
//!
//! * **store QPS** — non-shed updates per virtual second of the busiest
//!   shard (shards consume store time in parallel), clipped by the shared
//!   write-capacity model;
//! * **client-visible QPS** — `store QPS / (1 − shed ratio)`: the rate
//!   clients experience once schools shed the redundant updates.
//!
//! `--elastic` exercises the live-membership path instead: one cluster
//! grows 2 → 5 → 10 shards *mid-run* (rendezvous ownership, scheduler
//! re-seeding at the migrated cells' deadline phase) and the windowed QPS
//! timeline around each join — the dip-and-recovery curve — is saved to
//! `bench_results/fig14_elastic.json`.

use moist::bigtable::{Bigtable, Timestamp};
use moist::core::{MoistCluster, MoistConfig, ObjectId, ServerStats, UpdateMessage};
use moist::workload::{ClientPool, RoadMap, RoadMapConfig, RoadNetSim, SimConfig};
use moist_bench::{smoke_mode, Figure, Series, STORE_WRITE_CAPACITY_OPS};
use std::sync::Mutex;

struct Scale {
    shard_counts: Vec<usize>,
    clients: usize,
    agents_per_client: u64,
    warmup_secs: f64,
    measure_secs: f64,
}

impl Scale {
    fn full() -> Self {
        Scale {
            shard_counts: vec![1, 2, 4, 5, 10],
            clients: 4,
            agents_per_client: 1200,
            warmup_secs: 60.0,
            measure_secs: 240.0,
        }
    }

    fn smoke() -> Self {
        Scale {
            shard_counts: vec![1, 2, 4],
            clients: 2,
            agents_per_client: 300,
            warmup_secs: 30.0,
            measure_secs: 60.0,
        }
    }
}

/// Counter deltas between two aggregate snapshots.
fn delta(after: &ServerStats, before: &ServerStats) -> ServerStats {
    ServerStats {
        updates: after.updates - before.updates,
        shed: after.shed - before.shed,
        leader_updates: after.leader_updates - before.leader_updates,
        registered: after.registered - before.registered,
        departures: after.departures - before.departures,
        nn_queries: after.nn_queries - before.nn_queries,
        cluster_runs: after.cluster_runs - before.cluster_runs,
    }
}

struct Measured {
    store_qps: f64,
    client_qps: f64,
    shed: f64,
}

/// Drives every simulator from its current time to `until`, in `tick`-second
/// steps, routing updates through the cluster; on each tick worker `i` also
/// runs the lazy clustering pass for the shards congruent to `i` modulo the
/// worker count, so every shard gets clustering ticks even when there are
/// fewer client threads than shards.
fn drive(cluster: &MoistCluster, sims: &[Mutex<RoadNetSim>], until: f64, tick: f64) {
    let shards = cluster.num_shards();
    ClientPool::run(sims.len(), |i| {
        let mut sim = sims[i].lock().expect("sim lock");
        let oid_base = i as u64 * 10_000_000;
        let mut t = sim.now_secs();
        while t < until {
            t = (t + tick).min(until);
            for u in sim.advance_until(t) {
                cluster
                    .update(&UpdateMessage {
                        oid: ObjectId(oid_base + u.oid),
                        loc: u.loc,
                        vel: u.vel,
                        ts: Timestamp::from_secs_f64(u.at_secs),
                    })
                    .expect("update");
            }
            let mut shard = i;
            while shard < shards {
                cluster
                    .run_due_clustering_shard(shard, Timestamp::from_secs_f64(t))
                    .expect("clustering");
                shard += sims.len();
            }
        }
    });
}

fn run_one(shards: usize, scale: &Scale) -> Measured {
    let store = Bigtable::new();
    let cfg = MoistConfig {
        epsilon: 50.0,
        delta_m: 2.0,
        clustering_level: 3,
        cluster_interval_secs: 10.0,
        ..MoistConfig::default()
    };
    let cluster = MoistCluster::builder(&store, cfg)
        .shards(shards)
        .build()
        .expect("cluster");
    let sims: Vec<Mutex<RoadNetSim>> = (0..scale.clients)
        .map(|i| {
            Mutex::new(RoadNetSim::new(
                RoadMap::new(RoadMapConfig::default()),
                SimConfig {
                    agents: scale.agents_per_client,
                    seed: 4000 + i as u64,
                    ..SimConfig::default()
                },
            ))
        })
        .collect();
    // Warm-up: register everyone and let schools form, then measure from a
    // clean clock.
    drive(&cluster, &sims, scale.warmup_secs, 5.0);
    cluster.reset_clocks();
    let before = cluster.stats();
    drive(&cluster, &sims, scale.warmup_secs + scale.measure_secs, 5.0);
    let d = delta(&cluster.stats(), &before);
    assert!(d.balanced(), "outcome counters must sum: {d:?}");

    let busiest_secs = cluster.max_elapsed_us() / 1e6;
    let non_shed = (d.updates - d.shed) as f64;
    let store_qps = (non_shed / busiest_secs).min(STORE_WRITE_CAPACITY_OPS);
    let shed = d.shed as f64 / d.updates.max(1) as f64;
    let client_qps = store_qps / (1.0 - shed).max(0.05);
    Measured {
        store_qps,
        client_qps,
        shed,
    }
}

/// The elastic scenario: grow the fleet at fixed simulated times and
/// measure windowed throughput around each join.
struct ElasticScale {
    start_shards: usize,
    /// `(join at sim secs, target live shard count)`, in time order.
    joins: Vec<(f64, usize)>,
    clients: usize,
    agents_per_client: u64,
    warmup_secs: f64,
    window_secs: f64,
    end_secs: f64,
}

impl ElasticScale {
    fn full() -> Self {
        ElasticScale {
            start_shards: 2,
            joins: vec![(120.0, 5), (240.0, 10)],
            clients: 4,
            agents_per_client: 1200,
            warmup_secs: 60.0,
            window_secs: 20.0,
            end_secs: 360.0,
        }
    }

    fn smoke() -> Self {
        ElasticScale {
            start_shards: 2,
            joins: vec![(60.0, 3), (100.0, 4)],
            clients: 2,
            agents_per_client: 300,
            warmup_secs: 30.0,
            window_secs: 10.0,
            end_secs: 140.0,
        }
    }
}

fn run_elastic(scale: &ElasticScale, id: &str) {
    let store = Bigtable::new();
    let cfg = MoistConfig {
        epsilon: 50.0,
        delta_m: 2.0,
        clustering_level: 3,
        cluster_interval_secs: 10.0,
        ..MoistConfig::default()
    };
    let cluster = MoistCluster::builder(&store, cfg)
        .shards(scale.start_shards)
        .build()
        .expect("cluster");
    let sims: Vec<Mutex<RoadNetSim>> = (0..scale.clients)
        .map(|i| {
            Mutex::new(RoadNetSim::new(
                RoadMap::new(RoadMapConfig::default()),
                SimConfig {
                    agents: scale.agents_per_client,
                    seed: 5000 + i as u64,
                    ..SimConfig::default()
                },
            ))
        })
        .collect();
    drive(&cluster, &sims, scale.warmup_secs, 5.0);
    cluster.reset_clocks();

    let mut qps_series = Series::new("client-visible QPS");
    let mut shard_series = Series::new("live shards");
    let mut joins = scale.joins.iter().copied().peekable();
    let mut t = scale.warmup_secs;
    println!(
        "{:>8}  {:>7}  {:>10}  {:>7}",
        "sim sec", "shards", "client q/s", "shed %"
    );
    while t < scale.end_secs {
        // Grow the fleet live at the scheduled joins: each add_shard
        // migrates only the joiner's rendezvous wins, re-seeded at their
        // old deadline phase — the whole point of the elastic tier.
        if let Some(&(at, target)) = joins.peek() {
            if t >= at {
                while cluster.num_shards() < target {
                    cluster.add_shard().expect("live join");
                }
                println!(
                    "    -- joined to {} shards (epoch {}) --",
                    target,
                    cluster.epoch()
                );
                joins.next();
            }
        }
        let window_end = (t + scale.window_secs).min(scale.end_secs);
        let before = cluster.stats();
        let elapsed_before = cluster.max_elapsed_us();
        drive(&cluster, &sims, window_end, 5.0);
        let d = delta(&cluster.stats(), &before);
        let window_secs = (cluster.max_elapsed_us() - elapsed_before) / 1e6;
        let non_shed = (d.updates - d.shed) as f64;
        let store_qps = (non_shed / window_secs.max(1e-9)).min(STORE_WRITE_CAPACITY_OPS);
        let shed = d.shed as f64 / d.updates.max(1) as f64;
        let client_qps = store_qps / (1.0 - shed).max(0.05);
        println!(
            "{:>8.0}  {:>7}  {:>10.0}  {:>6.1}%",
            window_end,
            cluster.num_shards(),
            client_qps,
            shed * 100.0
        );
        qps_series.push(window_end, client_qps);
        shard_series.push(window_end, cluster.num_shards() as f64);
        t = window_end;
    }

    // Sanity: the fleet reached the target, no update went unaccounted,
    // and the grown fleet's ownership is still an exact partition.
    let final_target = scale
        .joins
        .last()
        .map(|&(_, n)| n)
        .unwrap_or(scale.start_shards);
    assert_eq!(cluster.num_shards(), final_target);
    let agg = cluster.stats();
    assert!(agg.balanced(), "outcome counters must sum: {agg:?}");
    let cells = moist::spatial::cells_at_level(cfg.clustering_level);
    let owned: usize = (0..cluster.num_shards())
        .map(|i| {
            cluster
                .with_shard(i, |s| s.scheduler().owned_count())
                .expect("live shard")
        })
        .sum();
    assert_eq!(owned as u64, cells, "grown fleet must partition the level");

    let mut fig = Figure::new(
        id,
        "Elastic scale-out: windowed client-visible QPS across live shard joins (road network)",
        "simulated seconds",
        "updates/s",
    );
    fig.add(qps_series);
    fig.add(shard_series);
    fig.print();
    fig.save().expect("save");
    println!(
        "elastic run complete: {} -> {} shards across {} epochs",
        scale.start_shards,
        final_target,
        cluster.epoch()
    );
}

fn main() {
    let smoke = smoke_mode();
    if std::env::args().any(|a| a == "--elastic") {
        let scale = if smoke {
            ElasticScale::smoke()
        } else {
            ElasticScale::full()
        };
        let id = if smoke {
            "fig14_elastic_smoke"
        } else {
            "fig14_elastic"
        };
        run_elastic(&scale, id);
        return;
    }
    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    let id = if smoke {
        "fig14_scaleout_smoke"
    } else {
        "fig14_scaleout"
    };
    let mut fig = Figure::new(
        id,
        "Scale-out: client-visible update QPS vs #front-end shards (road network)",
        "shards",
        "updates/s",
    );
    let mut client_series = Series::new("client-visible QPS");
    let mut store_series = Series::new("store QPS");
    let mut prev_client = 0.0;
    let mut monotonic = true;
    for &n in &scale.shard_counts {
        let m = run_one(n, &scale);
        println!(
            "{n:>2} shard(s): store {:>9.0} q/s  shed {:>5.1}%  client-visible {:>9.0} q/s",
            m.store_qps,
            m.shed * 100.0,
            m.client_qps
        );
        if n <= 4 && m.client_qps < prev_client {
            monotonic = false;
        }
        if n <= 4 {
            prev_client = m.client_qps;
        }
        client_series.push(n as f64, m.client_qps);
        store_series.push(n as f64, m.store_qps);
    }
    fig.add(client_series);
    fig.add(store_series);
    fig.print();
    fig.save().expect("save");
    assert!(
        monotonic,
        "client-visible QPS must scale monotonically across 1 -> 2 -> 4 shards"
    );
    println!("scaling 1 -> 2 -> 4 shards is monotonic");
}
