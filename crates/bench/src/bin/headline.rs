//! The paper's headline numbers (§1 and §4):
//!
//! 1. single-server MOIST (ε = 0, no schooling) vs the Bx-tree on update
//!    QPS at 1M objects — "8,000+ updates per second … 2x better than
//!    3,000+ QPS of Bx-tree";
//! 2. update shedding on the road network — "about 80% of the updates …
//!    are shed by object schools";
//! 3. the combined leverage — "with 10 servers and object schools, MOIST
//!    achieves update QPS of 60k …, showing a nearly 80x speedup over
//!    Bx-tree" (client-visible updates = store updates / (1 − shed)).
//!
//! The Bx-tree runs with the disk-B+-tree cost profile of the benchmark the
//! paper cites (its ref. 6); MOIST runs with the BigTable profile. Both indexes
//! execute their real algorithms; only the per-op cost constants differ.

use moist::baselines::{BxConfig, BxTree};
use moist::bigtable::{Bigtable, Timestamp};
use moist::core::{MoistConfig, MoistServer, ObjectId, UpdateMessage};
use moist::spatial::{Rect, Space};
use moist::workload::{RoadMap, RoadMapConfig, RoadNetSim, SimConfig, UniformSim};
use moist_bench::{disk_btree_profile, smoke_mode, Figure, Series, STORE_WRITE_CAPACITY_OPS};

fn moist_update_qps(n: u64, measured_updates: usize) -> f64 {
    let cfg = MoistConfig::without_schooling();
    let store = Bigtable::new();
    let mut server = MoistServer::new(&store, cfg).expect("server");
    let world = Rect::new(0.0, 0.0, 1000.0, 1000.0);
    let mut sim = UniformSim::new(world, n, 2.0, 5.0, 5).with_velocity_walk(0.5);
    // Register everyone (charged, then reset).
    for (oid, loc, vel) in sim.positions() {
        server
            .update(&UpdateMessage {
                oid: ObjectId(oid),
                loc,
                vel,
                ts: Timestamp::from_secs(1),
            })
            .expect("register");
    }
    server.session_mut().reset();
    let updates = sim.next_updates(measured_updates);
    for u in &updates {
        server
            .update(&UpdateMessage {
                oid: ObjectId(u.oid),
                loc: u.loc,
                vel: u.vel,
                ts: Timestamp::from_secs_f64(1.0 + u.at_secs),
            })
            .expect("update");
    }
    updates.len() as f64 / (server.elapsed_us() / 1e6)
}

fn bx_update_qps(n: u64, measured_updates: usize) -> f64 {
    let store = Bigtable::new();
    let mut tree = BxTree::new(
        &store,
        Space::paper_map(),
        BxConfig {
            v_max: 3.0,
            ..BxConfig::default()
        },
        "bx_headline",
    )
    .expect("bxtree");
    let mut session = store.session_with(disk_btree_profile());
    let world = Rect::new(0.0, 0.0, 1000.0, 1000.0);
    let mut sim = UniformSim::new(world, n, 2.0, 5.0, 5).with_velocity_walk(0.5);
    for (oid, loc, vel) in sim.positions() {
        tree.update(&mut session, oid, &loc, &vel, Timestamp::from_secs(1))
            .expect("insert");
    }
    session.reset();
    let updates = sim.next_updates(measured_updates);
    for u in &updates {
        tree.update(
            &mut session,
            u.oid,
            &u.loc,
            &u.vel,
            Timestamp::from_secs_f64(1.0 + u.at_secs),
        )
        .expect("update");
    }
    updates.len() as f64 / (session.elapsed_us() / 1e6)
}

/// The §1 shed claim, measured on the road network at school-friendly
/// parameters (dense co-movement, generous ε — the deployment regime).
fn shed_ratio(agents: u64, horizon_secs: f64) -> f64 {
    let cfg = MoistConfig {
        epsilon: 50.0,
        delta_m: 2.0,
        clustering_level: 1,
        ..MoistConfig::default()
    };
    let store = Bigtable::new();
    let mut server = MoistServer::new(&store, cfg).expect("server");
    let mut sim = RoadNetSim::new(
        RoadMap::new(RoadMapConfig::default()),
        SimConfig {
            agents,
            seed: 77,
            ..SimConfig::default()
        },
    );
    let mut t = 0.0;
    while t < horizon_secs {
        t += 10.0;
        for u in sim.advance_until(t) {
            server
                .update(&UpdateMessage {
                    oid: ObjectId(u.oid),
                    loc: u.loc,
                    vel: u.vel,
                    ts: Timestamp::from_secs_f64(u.at_secs),
                })
                .expect("update");
        }
        server
            .run_due_clustering(Timestamp::from_secs_f64(t))
            .expect("cluster");
    }
    server.stats().shed_ratio()
}

fn main() {
    // Smoke mode (CI): a small population and few updates — the numbers
    // drift from the paper's but every code path still runs end to end.
    let smoke = smoke_mode();
    let (population, measured, shed_agents, shed_secs) = if smoke {
        (60_000, 5_000, 300, 120.0)
    } else {
        (1_000_000, 30_000, 1000, 240.0)
    };
    println!("measuring single-server update QPS at {population} objects...");
    let moist_qps = moist_update_qps(population, measured);
    let bx_qps = bx_update_qps(population, measured);
    println!("measuring road-network shed ratio ({shed_agents} objects, {shed_secs} s)...");
    let shed = shed_ratio(shed_agents, shed_secs);

    let ten_server_store_qps = (10.0 * moist_qps).min(STORE_WRITE_CAPACITY_OPS);
    let effective_qps = ten_server_store_qps / (1.0 - shed).max(0.05);

    let mut fig = Figure::new(
        if smoke { "headline_smoke" } else { "headline" },
        format!("Headline update-QPS comparison ({population} objects)"),
        "row",
        "updates/s",
    );
    let mut series = Series::new("updates/s");
    series.push(1.0, bx_qps);
    series.push(2.0, moist_qps);
    series.push(3.0, ten_server_store_qps);
    series.push(4.0, effective_qps);
    fig.add(series);
    fig.save().expect("save");

    println!("\n================= headline results =================");
    println!("  [1] Bx-tree single server:            {bx_qps:>10.0} updates/s");
    println!("  [2] MOIST single server (no school):  {moist_qps:>10.0} updates/s");
    println!("  [3] MOIST 10 servers (store-limited): {ten_server_store_qps:>10.0} updates/s");
    println!(
        "  [4] + schooling shed ratio {:>5.1}%  ->  {effective_qps:>10.0} client updates/s",
        shed * 100.0
    );
    println!("----------------------------------------------------");
    println!(
        "  MOIST single vs Bx:       {:>6.1}x   (paper: ~2x, 8k vs 3k)",
        moist_qps / bx_qps
    );
    println!(
        "  10 servers vs single:     {:>6.1}x   (paper: near-linear, store-capped)",
        ten_server_store_qps / moist_qps
    );
    println!(
        "  effective vs Bx:          {:>6.1}x   (paper: 'nearly 80x')",
        effective_qps / bx_qps
    );
}
