//! Bench trajectory report *and* regression gate: diffs the QPS figures a
//! fresh smoke run just wrote against the previous run's archived JSON,
//! prints a delta table in the job log, and (in `--check` mode) fails the
//! job when any metric regressed beyond the threshold.
//!
//! CI snapshots the committed `bench_results/*.json` before running the
//! smoke bins, then invokes
//!
//! ```text
//! bench_trend [--check] [--max-drop-pct <pct>] [--median-dir <dir>]...
//!             <previous_dir> <current_dir>
//! ```
//!
//! Figures present in both directories are compared series by series,
//! point by point. Without `--check` the report is informational. With
//! `--check` the process exits non-zero if any overlapping point dropped
//! more than `--max-drop-pct` percent (default 15) — the smoke figures
//! are virtual-time QPS, deterministic enough to gate on. The cases that
//! must *not* fail the gate and do not: a first run (no previous
//! archive), a brand-new figure, a brand-new series, and new points
//! (e.g. a new shard count) — there is nothing to regress against.
//!
//! **De-noising.** The multi-threaded figures (fig14's `ClientPool`
//! timelines, fig15's and fig16's pooled scatters) wobble with thread
//! interleaving —
//! ±9% observed on a loaded runner, uncomfortably close to a 15% gate.
//! CI therefore re-runs those bins into scratch directories
//! (`MOIST_BENCH_RESULTS_DIR`) and passes each as `--median-dir`: for
//! every point that also appears in a median directory, the *median* of
//! all runs is compared instead of the single main-run sample, so one
//! unlucky interleaving cannot fail the job. Figures absent from the
//! median dirs (the deterministic single-threaded ones) gate on their
//! single run, unchanged. Series whose label contains `(noisy)` are
//! wall-clock-dependent by construction (e.g. fig13's opportunistic
//! query timeline, ±45% run to run) — they are diffed and printed but
//! never counted as regressions, however far they move.

use moist_bench::results_dir;
use serde_json::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One parsed figure: `series label -> (x, y) points`.
type FigureData = BTreeMap<String, Vec<(f64, f64)>>;

fn load_dir(dir: &Path) -> BTreeMap<String, FigureData> {
    let mut figures = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return figures;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| serde_json::from_str_value(&text).map_err(|e| e.to_string()))
        {
            Ok(value) => {
                if let Some((id, data)) = parse_figure(&value) {
                    figures.insert(id, data);
                }
            }
            Err(e) => eprintln!("[bench_trend] skipping {}: {e}", path.display()),
        }
    }
    figures
}

/// Extracts `(figure id, series data)` from one `Figure` JSON document.
fn parse_figure(value: &Value) -> Option<(String, FigureData)> {
    let id = value.get("id")?.as_str()?.to_string();
    let mut data = FigureData::new();
    for series in value.get("series")?.as_array()? {
        let label = series.get("label")?.as_str()?.to_string();
        let points = series
            .get("points")?
            .as_array()?
            .iter()
            .filter_map(|p| {
                let p = p.as_array()?;
                Some((p.first()?.as_f64()?, p.get(1)?.as_f64()?))
            })
            .collect();
        data.insert(label, points);
    }
    Some((id, data))
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_trend [--check] [--max-drop-pct <pct>] [--median-dir <dir>]... \
         [<previous_dir> [<current_dir>]]"
    );
    std::process::exit(2);
}

/// The median of a non-empty sample set.
fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

fn main() {
    let mut check = false;
    let mut max_drop_pct: Option<f64> = None;
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut median_dirs: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--max-drop-pct" => {
                let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) else {
                    usage();
                };
                if v <= 0.0 || !v.is_finite() {
                    usage();
                }
                max_drop_pct = Some(v);
            }
            "--median-dir" => {
                let Some(d) = args.next() else { usage() };
                median_dirs.push(PathBuf::from(d));
            }
            // A typoed flag must not silently become a (nonexistent)
            // directory — that would disable the gate with exit 0.
            s if s.starts_with('-') => usage(),
            _ => dirs.push(PathBuf::from(arg)),
        }
    }
    let (prev_dir, cur_dir) = match dirs.as_slice() {
        [prev, cur] => (prev.clone(), cur.clone()),
        [prev] => (prev.clone(), results_dir()),
        [] => (results_dir().join("prev"), results_dir()),
        _ => usage(),
    };
    // An explicit --max-drop-pct sets the marker threshold in both modes
    // (the flag is never silently ignored); the gate defaults to 15%, the
    // informational report to its historic 10% marker.
    let drop_pct = max_drop_pct.unwrap_or(if check { 15.0 } else { 10.0 });
    let prev = load_dir(&prev_dir);
    let cur = load_dir(&cur_dir);
    let medians: Vec<BTreeMap<String, FigureData>> =
        median_dirs.iter().map(|d| load_dir(d)).collect();
    if prev.is_empty() {
        println!(
            "[bench_trend] no previous results under {} — current run becomes the baseline",
            prev_dir.display()
        );
        return;
    }

    println!(
        "=== bench trend: {} vs {} ===",
        cur_dir.display(),
        prev_dir.display()
    );
    println!(
        "{:<22} {:<22} {:>9} {:>12} {:>12} {:>9}",
        "figure", "series", "x", "previous", "current", "delta"
    );
    let mut compared = 0usize;
    let mut regressions = 0usize;
    for (id, cur_fig) in &cur {
        let Some(prev_fig) = prev.get(id) else {
            println!("{id:<22} (new figure — no previous run to diff)");
            continue;
        };
        for (label, cur_points) in cur_fig {
            let Some(prev_points) = prev_fig.get(label) else {
                println!("{id:<22} {label:<22} (new series)");
                continue;
            };
            // `(noisy)` series are wall-clock-dependent by construction:
            // diffed for the log, never gated.
            let gated = !label.contains("(noisy)");
            for &(x, raw_y) in cur_points {
                // Match points by x: series may gain or lose shard counts
                // or time windows between runs.
                let Some(&(_, py)) = prev_points.iter().find(|(px, _)| (px - x).abs() < 1e-9)
                else {
                    continue;
                };
                // Median-of-N for the interleaving-sensitive figures: any
                // extra run of this figure/series/point contributes a
                // sample, and the median is what gates.
                let mut samples = vec![raw_y];
                for m in &medians {
                    if let Some(&(_, my)) = m
                        .get(id)
                        .and_then(|fig| fig.get(label))
                        .and_then(|pts| pts.iter().find(|(px, _)| (px - x).abs() < 1e-9))
                    {
                        samples.push(my);
                    }
                }
                let runs = samples.len();
                let y = median(samples);
                // A ~0 baseline has no meaningful percentage (e.g. an
                // empty measurement window in a previous run): print the
                // raw values honestly instead of a misleading +0.0%.
                if py.abs() <= f64::EPSILON {
                    println!(
                        "{:<22} {:<22} {:>9.1} {:>12.1} {:>12.1} {:>9}",
                        truncate(id, 22),
                        truncate(label, 22),
                        x,
                        py,
                        y,
                        "n/a"
                    );
                    continue;
                }
                let pct = (y - py) / py * 100.0;
                if gated {
                    compared += 1;
                    if pct < -drop_pct {
                        regressions += 1;
                    }
                }
                println!(
                    "{:<22} {:<22} {:>9.1} {:>12.1} {:>12.1} {:>+8.1}%{}{}",
                    truncate(id, 22),
                    truncate(label, 22),
                    x,
                    py,
                    y,
                    pct,
                    if runs > 1 {
                        format!("  (median of {runs})")
                    } else {
                        String::new()
                    },
                    if !gated {
                        "  (not gated)"
                    } else if pct < -drop_pct {
                        "  <-- regression?"
                    } else {
                        ""
                    }
                );
            }
        }
    }
    if compared == 0 {
        println!("[bench_trend] no overlapping points between the two runs");
    } else if check {
        println!("[bench_trend] compared {compared} points against a {drop_pct}% drop gate");
    } else {
        println!(
            "[bench_trend] compared {compared} points; {regressions} dropped more than \
             {drop_pct}% (informational — smoke QPS wobbles on shared runners)"
        );
    }
    if check && regressions > 0 {
        eprintln!(
            "[bench_trend] FAIL: {regressions} metric(s) regressed more than {drop_pct}% \
             vs the previous archive"
        );
        std::process::exit(1);
    }
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}
