//! Figure 13 — update QPS (§4.3.2–4.3.3).
//!
//! * `fig13 single`  — (a) single-server update QPS against the number of
//!   indexed objects (400k → 1M), ε = 0 worst case;
//! * `fig13 multi5`  — (b) update-QPS timeline with 5 servers sharing one
//!   store;
//! * `fig13 multi10` — (c) the same with 10 servers: demand exceeds the
//!   store's write capacity, so throughput saturates around 60k QPS and
//!   wobbles, with the excess shown as failed queries (the paper's dashed
//!   line).
//!
//! Per-server throughput comes from real updates charged by the cost model;
//! only the shared-capacity clip of the aggregate is modelled
//! (see `moist_bench::capacity_step`).

use moist::bigtable::{Bigtable, CostProfile, Timestamp};
use moist::core::{
    LfRecord, LocationRecord, MoistConfig, MoistServer, MoistTables, ObjectId, UpdateMessage,
};
use moist::spatial::Rect;
use moist::workload::{ClientPool, UniformSim};
use moist_bench::{capacity_step, smoke_mode, Figure, Series};
use std::sync::Arc;

/// Bulk-loads `n` objects directly through the tables (free session), then
/// returns the store. The measured phase uses the public update path.
fn bulk_load(n: u64, cfg: &MoistConfig) -> Arc<Bigtable> {
    let store = Bigtable::new();
    let tables = MoistTables::create(&store, cfg).expect("tables");
    let mut s = store.session_with(CostProfile::free());
    let world = Rect::new(0.0, 0.0, 1000.0, 1000.0);
    let sim = UniformSim::new(world, n, 2.0, 5.0, 99);
    let ts = Timestamp::from_secs(1);
    for (oid, loc, vel) in sim.positions() {
        let leaf = cfg.space.leaf_cell(&loc).index;
        let rec = LocationRecord {
            loc,
            vel,
            leaf_index: leaf,
        };
        tables
            .put_location(&mut s, ObjectId(oid), &rec, ts)
            .expect("loc");
        tables
            .spatial_insert(&mut s, leaf, ObjectId(oid), &rec, ts)
            .expect("spatial");
        tables
            .set_lf(
                &mut s,
                ObjectId(oid),
                &LfRecord::Leader {
                    since_us: ts.0,
                    last_leaf: leaf,
                },
                ts,
            )
            .expect("lf");
    }
    store
}

/// Measures single-server update QPS at population `n`.
fn single_qps(n: u64, measured_updates: usize) -> f64 {
    let cfg = MoistConfig::without_schooling();
    let store = bulk_load(n, &cfg);
    let mut server = MoistServer::new(&store, cfg).expect("server");
    let world = Rect::new(0.0, 0.0, 1000.0, 1000.0);
    let mut sim = UniformSim::new(world, n, 2.0, 5.0, 7).with_velocity_walk(0.5);
    let updates = sim.next_updates(measured_updates);
    server.session_mut().reset();
    for u in &updates {
        server
            .update(&UpdateMessage {
                oid: ObjectId(u.oid),
                loc: u.loc,
                vel: u.vel,
                ts: Timestamp::from_secs_f64(1.0 + u.at_secs),
            })
            .expect("update");
    }
    updates.len() as f64 / (server.elapsed_us() / 1e6)
}

fn single(smoke: bool) {
    let mut fig = Figure::new(
        if smoke { "fig13a_smoke" } else { "fig13a" },
        "Single-server update QPS vs #indexed objects (ε = 0)",
        "objects",
        "update QPS",
    );
    let (populations, measured): (&[u64], usize) = if smoke {
        (&[100_000, 200_000], 10_000)
    } else {
        (&[400_000, 600_000, 800_000, 1_000_000], 50_000)
    };
    let mut series = Series::new("update QPS");
    for &n in populations {
        let qps = single_qps(n, measured);
        println!("{n:>9} objects: {qps:>8.0} updates/s");
        series.push(n as f64, qps);
    }
    fig.add(series);
    fig.print();
    fig.save().expect("save");
}

/// Multi-server timeline: `servers` OS threads each drive a MoistServer
/// against one shared store for `horizon_secs` of virtual time; the
/// aggregate per-second demand is clipped by the store capacity model.
fn multi(servers: usize, horizon_secs: u64, fig_id: &str, population: u64) {
    let cfg = MoistConfig::without_schooling();
    let store = bulk_load(population, &cfg);
    println!("loaded {population} objects; driving {servers} servers...");
    // Each worker returns its per-second completed-update counts.
    let per_server: Vec<Vec<f64>> = ClientPool::run(servers, |i| {
        let mut server = MoistServer::new(&store, cfg).expect("server");
        let world = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let mut sim =
            UniformSim::new(world, population, 2.0, 5.0, 1000 + i as u64).with_velocity_walk(0.5);
        let mut buckets = vec![0.0f64; horizon_secs as usize];
        'outer: loop {
            for u in sim.next_updates(2048) {
                server
                    .update(&UpdateMessage {
                        oid: ObjectId(u.oid),
                        loc: u.loc,
                        vel: u.vel,
                        ts: Timestamp::from_secs_f64(1.0 + u.at_secs),
                    })
                    .expect("update");
                let sec = (server.elapsed_us() / 1e6) as usize;
                if sec >= horizon_secs as usize {
                    break 'outer;
                }
                buckets[sec] += 1.0;
            }
        }
        buckets
    });
    let mut fig = Figure::new(
        fig_id,
        format!("Update QPS timeline, {servers} servers sharing one store"),
        "second",
        "updates/s",
    );
    let mut served_series = Series::new("served QPS");
    let mut failed_series = Series::new("failed QPS (dashed)");
    let mut total_served = 0.0;
    for sec in 0..horizon_secs as usize {
        let demand: f64 = per_server.iter().map(|b| b[sec]).sum();
        let (served, failed) = capacity_step(demand, sec as u64, servers as u64);
        served_series.push(sec as f64, served);
        failed_series.push(sec as f64, failed);
        total_served += served;
    }
    let avg = total_served / horizon_secs as f64;
    fig.add(served_series);
    fig.add(failed_series);
    fig.print();
    println!("\naverage served QPS over {horizon_secs}s: {avg:.0}");
    fig.save().expect("save");
}

fn main() {
    let smoke = smoke_mode();
    let (population, horizon) = if smoke { (100_000, 5) } else { (1_000_000, 30) };
    let (id_b, id_c) = if smoke {
        ("fig13b_smoke", "fig13c_smoke")
    } else {
        ("fig13b", "fig13c")
    };
    // The mode is the first non-flag argument, wherever it sits relative
    // to `--smoke` (`fig13 --smoke single` must not fall back to `all`).
    let arg = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "all".into());
    match arg.as_str() {
        "single" => single(smoke),
        "multi5" => multi(5, horizon, id_b, population),
        "multi10" => multi(10, horizon, id_c, population),
        _ => {
            single(smoke);
            multi(5, horizon, id_b, population);
            multi(10, horizon, id_c, population);
        }
    }
}
