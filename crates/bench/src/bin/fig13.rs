//! Figure 13 — update QPS (§4.3.2–4.3.3), with the §5 query mix.
//!
//! * `fig13 single`  — (a) single-server update QPS against the number of
//!   indexed objects (400k → 1M), ε = 0 worst case;
//! * `fig13 multi5`  — (b) update-QPS timeline with 5 front-end shards
//!   sharing one store;
//! * `fig13 multi10` — (c) the same with 10 shards: demand exceeds the
//!   store's write capacity, so throughput saturates around 60k QPS and
//!   wobbles, with the excess shown as failed queries (the paper's dashed
//!   line).
//!
//! The multi-server timelines drive a real [`MoistCluster`] (rendezvous
//! routing, load-aware placement, scatter-gather fan-out), not N isolated
//! servers: the updater threads route through the tier, and two extra
//! **querier threads** keep a region + NN mix in flight the whole run —
//! the paper's workload is "a large number of queries of different types"
//! (§4.1), so the headline fleet numbers include the fan-out paths, not
//! just pure update pressure. The region/NN timeline is reported as its
//! own `query QPS (noisy)` series — informational for the bench gate,
//! because the query counts depend on wall-clock scheduling.
//!
//! Per-shard throughput comes from real updates charged by the cost model;
//! only the shared-capacity clip of the aggregate is modelled
//! (see `moist_bench::capacity_step`).

use moist::bigtable::{Bigtable, CostProfile, Timestamp};
use moist::core::{
    LfRecord, LocationRecord, MoistCluster, MoistConfig, MoistServer, MoistTables, ObjectId,
    UpdateMessage,
};
use moist::spatial::{Point, Rect};
use moist::workload::{ClientPool, UniformSim};
use moist_bench::{capacity_step, smoke_mode, Figure, Series};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Bulk-loads `n` objects directly through the tables (free session), then
/// returns the store. The measured phase uses the public update path.
fn bulk_load(n: u64, cfg: &MoistConfig) -> Arc<Bigtable> {
    let store = Bigtable::new();
    let tables = MoistTables::create(&store, cfg).expect("tables");
    let mut s = store.session_with(CostProfile::free());
    let world = Rect::new(0.0, 0.0, 1000.0, 1000.0);
    let sim = UniformSim::new(world, n, 2.0, 5.0, 99);
    let ts = Timestamp::from_secs(1);
    for (oid, loc, vel) in sim.positions() {
        let leaf = cfg.space.leaf_cell(&loc).index;
        let rec = LocationRecord {
            loc,
            vel,
            leaf_index: leaf,
        };
        tables
            .put_location(&mut s, ObjectId(oid), &rec, ts)
            .expect("loc");
        tables
            .spatial_insert(&mut s, leaf, ObjectId(oid), &rec, ts)
            .expect("spatial");
        tables
            .set_lf(
                &mut s,
                ObjectId(oid),
                &LfRecord::Leader {
                    since_us: ts.0,
                    last_leaf: leaf,
                },
                ts,
            )
            .expect("lf");
    }
    store
}

/// Measures single-server update QPS at population `n`.
fn single_qps(n: u64, measured_updates: usize) -> f64 {
    let cfg = MoistConfig::without_schooling();
    let store = bulk_load(n, &cfg);
    let mut server = MoistServer::new(&store, cfg).expect("server");
    let world = Rect::new(0.0, 0.0, 1000.0, 1000.0);
    let mut sim = UniformSim::new(world, n, 2.0, 5.0, 7).with_velocity_walk(0.5);
    let updates = sim.next_updates(measured_updates);
    server.session_mut().reset();
    for u in &updates {
        server
            .update(&UpdateMessage {
                oid: ObjectId(u.oid),
                loc: u.loc,
                vel: u.vel,
                ts: Timestamp::from_secs_f64(1.0 + u.at_secs),
            })
            .expect("update");
    }
    updates.len() as f64 / (server.elapsed_us() / 1e6)
}

fn single(smoke: bool) {
    let mut fig = Figure::new(
        if smoke { "fig13a_smoke" } else { "fig13a" },
        "Single-server update QPS vs #indexed objects (ε = 0)",
        "objects",
        "update QPS",
    );
    let (populations, measured): (&[u64], usize) = if smoke {
        (&[100_000, 200_000], 10_000)
    } else {
        (&[400_000, 600_000, 800_000, 1_000_000], 50_000)
    };
    let mut series = Series::new("update QPS");
    for &n in populations {
        let qps = single_qps(n, measured);
        println!("{n:>9} objects: {qps:>8.0} updates/s");
        series.push(n as f64, qps);
    }
    fig.add(series);
    fig.print();
    fig.save().expect("save");
}

/// What one fig13 worker produced: per-second completed-op counts, on the
/// tier's virtual timeline (busiest-shard seconds).
enum WorkerBuckets {
    Updates(Vec<f64>),
    Queries(Vec<f64>),
}

/// Multi-server timeline: a `MoistCluster` of `servers` shards driven by
/// `servers` updater threads plus two querier threads (region + NN) for
/// `horizon_secs` of busiest-shard virtual time; the aggregate per-second
/// update demand is clipped by the store capacity model, and the query
/// timeline is reported alongside it.
fn multi(servers: usize, horizon_secs: u64, fig_id: &str, population: u64) {
    let cfg = MoistConfig::without_schooling();
    let store = bulk_load(population, &cfg);
    let cluster = MoistCluster::builder(&store, cfg)
        .shards(servers)
        .build()
        .expect("cluster");
    let queriers = 2usize;
    println!("loaded {population} objects; driving {servers} shards + {queriers} queriers...");
    let horizon = horizon_secs as usize;
    let updaters_running = AtomicUsize::new(servers);
    // The shared virtual clock: the tier's makespan, sampled per batch.
    let tier_sec = |cluster: &MoistCluster| (cluster.max_elapsed_us() / 1e6) as usize;
    let per_worker: Vec<WorkerBuckets> = ClientPool::run(servers + queriers, |i| {
        if i < servers {
            // Updater: one simulated fleet slice routed through the tier.
            let world = Rect::new(0.0, 0.0, 1000.0, 1000.0);
            let mut sim = UniformSim::new(world, population, 2.0, 5.0, 1000 + i as u64)
                .with_velocity_walk(0.5);
            let mut buckets = vec![0.0f64; horizon];
            'outer: loop {
                // Batch between clock samples: max_elapsed_us takes every
                // shard lock, far too hot to pay per update.
                let batch = sim.next_updates(512);
                let sec = tier_sec(&cluster);
                if sec >= horizon {
                    break 'outer;
                }
                for u in &batch {
                    cluster
                        .update(&UpdateMessage {
                            oid: ObjectId(u.oid),
                            loc: u.loc,
                            vel: u.vel,
                            ts: Timestamp::from_secs_f64(1.0 + u.at_secs),
                        })
                        .expect("update");
                    buckets[sec] += 1.0;
                }
            }
            updaters_running.fetch_sub(1, Ordering::SeqCst);
            WorkerBuckets::Updates(buckets)
        } else {
            // Querier: a region + NN mix in flight for the whole run —
            // scattered plans fan out across the same shards absorbing
            // the update stream.
            let mut buckets = vec![0.0f64; horizon];
            let at = Timestamp::from_secs(1);
            let mut q = 0u64;
            while updaters_running.load(Ordering::SeqCst) > 0 {
                let f = (q % 17) as f64 / 17.0;
                let (cx, cy) = (80.0 + 840.0 * f, 80.0 + 840.0 * (1.0 - f));
                let sec = tier_sec(&cluster);
                if sec >= horizon {
                    // Updaters may still be filling the tail; only our
                    // bucketing stops.
                    break;
                }
                if i == servers {
                    let side = if q.is_multiple_of(8) { 500.0 } else { 120.0 };
                    let rect = Rect::new(
                        cx - side / 2.0,
                        cy - side / 2.0,
                        cx + side / 2.0,
                        cy + side / 2.0,
                    );
                    cluster.region(&rect, at, 0.0).expect("region");
                } else {
                    cluster.nn(Point::new(cx, cy), 10, at).expect("nn");
                }
                buckets[sec] += 1.0;
                q += 1;
            }
            WorkerBuckets::Queries(buckets)
        }
    });
    let mut fig = Figure::new(
        fig_id,
        format!("Update + query QPS timeline, {servers} shards sharing one store"),
        "second",
        "ops/s",
    );
    let mut served_series = Series::new("served QPS");
    let mut failed_series = Series::new("failed QPS (dashed)");
    // "(noisy)" marks the series as informational for bench_trend: the
    // queriers issue whatever fits between the updaters' lock holds, so
    // the per-second counts depend on wall-clock scheduling (±45%
    // observed) — far too wobbly for a 15% gate, unlike the virtual-time
    // update series.
    let mut query_series = Series::new("query QPS (noisy)");
    let mut total_served = 0.0;
    let mut total_queries = 0.0;
    for sec in 0..horizon {
        let demand: f64 = per_worker
            .iter()
            .map(|b| match b {
                WorkerBuckets::Updates(b) => b[sec],
                WorkerBuckets::Queries(_) => 0.0,
            })
            .sum();
        let queries: f64 = per_worker
            .iter()
            .map(|b| match b {
                WorkerBuckets::Updates(_) => 0.0,
                WorkerBuckets::Queries(b) => b[sec],
            })
            .sum();
        let (served, failed) = capacity_step(demand, sec as u64, servers as u64);
        served_series.push(sec as f64, served);
        failed_series.push(sec as f64, failed);
        query_series.push(sec as f64, queries);
        total_served += served;
        total_queries += queries;
    }
    let avg = total_served / horizon_secs as f64;
    let avg_q = total_queries / horizon_secs as f64;
    fig.add(served_series);
    fig.add(failed_series);
    fig.add(query_series);
    fig.print();
    println!("\naverage served QPS over {horizon_secs}s: {avg:.0} (+ {avg_q:.0} region/NN q/s)");
    fig.save().expect("save");
}

fn main() {
    let smoke = smoke_mode();
    let (population, horizon) = if smoke { (100_000, 5) } else { (1_000_000, 30) };
    let (id_b, id_c) = if smoke {
        ("fig13b_smoke", "fig13c_smoke")
    } else {
        ("fig13b", "fig13c")
    };
    // The mode is the first non-flag argument, wherever it sits relative
    // to `--smoke` (`fig13 --smoke single` must not fall back to `all`).
    let arg = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "all".into());
    match arg.as_str() {
        "single" => single(smoke),
        "multi5" => multi(5, horizon, id_b, population),
        "multi10" => multi(10, horizon, id_c, population),
        _ => {
            single(smoke);
            multi(5, horizon, id_b, population);
            multi(10, horizon, id_c, population);
        }
    }
}
