//! Figure 12 — "Effectiveness of adaptation over BigTable using FLAG"
//! (§4.3.1).
//!
//! * `fig12 range`   — (a) NN QPS and (b) per-query time against the search
//!   range limit (20–100 m), single server, 100k static objects: FLAG vs
//!   fixed search levels;
//! * `fig12 density` — (c) NN QPS and (d) per-query time against object
//!   density (1k / 10k / 50k / 100k objects in 1 km², 10 m range limit).
//!
//! The paper's "Search Level 19 (8 m)" and "Level 20 (4 m)" translate on
//! our 1,000-unit (= 1 km, metre-per-unit) map to levels 7 (7.8 m) and
//! 8 (3.9 m).

use moist::bigtable::{Bigtable, Timestamp};
use moist::core::{MoistConfig, MoistServer, NnOptions, ObjectId, UpdateMessage};
use moist::spatial::{Point, Velocity};
use moist_bench::{Figure, Series};

const LEVEL_8M: u8 = 7; // "Search Level 19 (8m-long square)"
const LEVEL_4M: u8 = 8; // "Search Level 20 (4m-long square)"
const QUERIES: usize = 200;

/// Loads `n` static uniform objects through the public update path.
fn load(n: usize) -> MoistServer {
    let store = Bigtable::new();
    // ε = 0: worst case, every object a leader ("we did these experiments
    // under the worst case", §4).
    let mut server = MoistServer::new(&store, MoistConfig::without_schooling()).expect("server");
    let mut state = 0xD15C0_u64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..n {
        server
            .update(&UpdateMessage {
                oid: ObjectId(i as u64),
                loc: Point::new(rnd() * 1000.0, rnd() * 1000.0),
                vel: Velocity::ZERO,
                ts: Timestamp::from_secs(1),
            })
            .expect("update");
    }
    server.session_mut().reset();
    server
}

/// Average per-query virtual time (µs) for range-limited NN queries.
fn avg_query_us(server: &mut MoistServer, range: f64, level: Option<u8>) -> f64 {
    let mut state = 0xABCD_u64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let at = Timestamp::from_secs(1);
    let mut total = 0.0;
    for _ in 0..QUERIES {
        let q = Point::new(rnd() * 1000.0, rnd() * 1000.0);
        let nn_level = match level {
            Some(l) => l,
            None => server.flag_level(&q, at).expect("flag"),
        };
        let opts = NnOptions::within(usize::MAX / 2, nn_level, range);
        let (_, stats) = server.nn_with_options(q, at, &opts).expect("nn");
        total += stats.cost_us;
    }
    total / QUERIES as f64
}

fn range_sweep() {
    let mut server = load(100_000);
    let mut qps_fig = Figure::new(
        "fig12a",
        "NN QPS vs search range limit (100k objects, single server)",
        "range limit (m)",
        "NN QPS",
    );
    let mut cost_fig = Figure::new(
        "fig12b",
        "NN time vs search range limit (100k objects, single server)",
        "range limit (m)",
        "avg NN time (ms)",
    );
    for (label, level) in [
        ("FLAG", None),
        ("fixed level 7 (8m)", Some(LEVEL_8M)),
        ("fixed level 8 (4m)", Some(LEVEL_4M)),
    ] {
        let mut qps = Series::new(label);
        let mut cost = Series::new(label);
        for range in [20.0, 40.0, 60.0, 80.0, 100.0] {
            let us = avg_query_us(&mut server, range, level);
            qps.push(range, 1e6 / us);
            cost.push(range, us / 1000.0);
        }
        qps_fig.add(qps);
        cost_fig.add(cost);
    }
    qps_fig.print();
    cost_fig.print();
    qps_fig.save().expect("save");
    cost_fig.save().expect("save");
}

fn density_sweep() {
    let mut qps_fig = Figure::new(
        "fig12c",
        "NN QPS vs object density (10 m range limit)",
        "objects",
        "NN QPS",
    );
    let mut cost_fig = Figure::new(
        "fig12d",
        "NN time vs object density (10 m range limit)",
        "objects",
        "avg NN time (ms)",
    );
    let mut flag_qps = Series::new("FLAG");
    let mut l7_qps = Series::new("fixed level 7 (8m)");
    let mut l8_qps = Series::new("fixed level 8 (4m)");
    let mut flag_cost = Series::new("FLAG");
    let mut l7_cost = Series::new("fixed level 7 (8m)");
    let mut l8_cost = Series::new("fixed level 8 (4m)");
    for n in [1_000usize, 10_000, 50_000, 100_000] {
        let mut server = load(n);
        let x = n as f64;
        let us_flag = avg_query_us(&mut server, 10.0, None);
        let us_l7 = avg_query_us(&mut server, 10.0, Some(LEVEL_8M));
        let us_l8 = avg_query_us(&mut server, 10.0, Some(LEVEL_4M));
        flag_qps.push(x, 1e6 / us_flag);
        l7_qps.push(x, 1e6 / us_l7);
        l8_qps.push(x, 1e6 / us_l8);
        flag_cost.push(x, us_flag / 1000.0);
        l7_cost.push(x, us_l7 / 1000.0);
        l8_cost.push(x, us_l8 / 1000.0);
    }
    qps_fig.add(flag_qps);
    qps_fig.add(l7_qps);
    qps_fig.add(l8_qps);
    cost_fig.add(flag_cost);
    cost_fig.add(l7_cost);
    cost_fig.add(l8_cost);
    qps_fig.print();
    cost_fig.print();
    qps_fig.save().expect("save");
    cost_fig.save().expect("save");
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    if arg == "range" || arg == "all" {
        range_sweep();
    }
    if arg == "density" || arg == "all" {
        density_sweep();
    }
}
