//! Wall-clock micro-benchmarks of the PPP archiving pipeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use moist::archive::{HistoryRecord, PingPongBuffer, PppArchiver, PppConfig, RECORD_BYTES};
use moist::spatial::{Point, Rect, Space, Velocity};

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("ppp");
    group.bench_function("ingest", |b| {
        let archiver = PppArchiver::new(Space::paper_map(), PppConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let oid = t % 10_000;
            black_box(archiver.ingest(
                HistoryRecord::new(
                    oid,
                    t,
                    Point::new((oid % 1000) as f64, (oid % 997) as f64),
                    Velocity::new(1.0, 0.0),
                ),
                t,
            ))
        })
    });
    group.bench_function("pingpong_append_column", |b| {
        let mut buf = PingPongBuffer::new(4096 * RECORD_BYTES);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let col: Vec<HistoryRecord> = (0..8)
                .map(|i| {
                    HistoryRecord::new(t % 100, t * 8 + i, Point::new(1.0, 2.0), Velocity::ZERO)
                })
                .collect();
            black_box(buf.append_column(col, t))
        })
    });
    group.finish();
}

fn bench_history_queries(c: &mut Criterion) {
    // Pre-populate an archive with 2000 objects × 64 records.
    let archiver = PppArchiver::new(Space::paper_map(), PppConfig::default());
    for oid in 0..2000u64 {
        let x = (oid % 1000) as f64;
        for t in 0..64u64 {
            archiver.ingest(
                HistoryRecord::new(oid, t * 1_000_000, Point::new(x, x), Velocity::ZERO),
                t * 1_000_000,
            );
        }
    }
    archiver.flush_all();
    let mut group = c.benchmark_group("history");
    group.bench_function("object_query", |b| {
        let mut oid = 0u64;
        b.iter(|| {
            oid = (oid + 37) % 2000;
            black_box(archiver.query_object(oid, 0, u64::MAX))
        })
    });
    group.sample_size(20);
    group.bench_function("region_query", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 119.0) % 800.0;
            black_box(archiver.query_region(
                &Rect::new(x, x, x + 100.0, x + 100.0),
                0,
                u64::MAX,
                0.0,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_history_queries);
criterion_main!(benches);
