//! Wall-clock micro-benchmarks of the BigTable-semantics store (raw data
//! structure speed, independent of the virtual cost model).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use moist::bigtable::{
    Bigtable, ColumnFamily, Mutation, ReadOptions, RowKey, RowMutation, ScanRange, TableSchema,
    Timestamp,
};

fn setup(
    rows: u64,
) -> (
    std::sync::Arc<Bigtable>,
    std::sync::Arc<moist::bigtable::Table>,
) {
    let store = Bigtable::new();
    let table = store
        .create_table(TableSchema::new("t", vec![ColumnFamily::in_memory("f", 1)]).unwrap())
        .unwrap();
    for i in 0..rows {
        table
            .mutate_row(
                &RowKey::from_u64(i),
                &[Mutation::put("f", "q", Timestamp(0), vec![0u8; 40])],
            )
            .unwrap();
    }
    (store, table)
}

fn bench_point_ops(c: &mut Criterion) {
    let (_store, table) = setup(100_000);
    let mut group = c.benchmark_group("store");
    group.bench_function("point_write_100k_rows", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            table
                .mutate_row(
                    &RowKey::from_u64(i),
                    &[Mutation::put("f", "q", Timestamp(1), vec![1u8; 40])],
                )
                .unwrap()
        })
    });
    group.bench_function("point_read_100k_rows", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            black_box(table.get_latest(&RowKey::from_u64(i), "f", "q").unwrap())
        })
    });
    group.finish();
}

fn bench_batches(c: &mut Criterion) {
    let (_store, table) = setup(100_000);
    let mut group = c.benchmark_group("store_batch");
    group.bench_function("batch_write_256", |b| {
        let mut base = 0u64;
        b.iter(|| {
            base = (base + 1) % 1000;
            let batch: Vec<RowMutation> = (0..256u64)
                .map(|i| {
                    RowMutation::new(
                        RowKey::from_u64(base * 256 + i),
                        vec![Mutation::put("f", "q", Timestamp(2), vec![2u8; 40])],
                    )
                })
                .collect();
            table.mutate_rows(&batch).unwrap()
        })
    });
    group.bench_function("scan_256_rows", |b| {
        let mut base = 0u64;
        b.iter(|| {
            base = (base + 997) % 99_000;
            black_box(
                table
                    .scan(
                        &ScanRange::between(RowKey::from_u64(base), RowKey::from_u64(base + 256)),
                        &ReadOptions::latest(),
                        None,
                    )
                    .unwrap(),
            )
        })
    });
    group.bench_function("batch_get_64", |b| {
        let mut base = 0u64;
        b.iter(|| {
            base = (base + 463) % 99_000;
            let keys: Vec<RowKey> = (0..64u64)
                .map(|i| RowKey::from_u64(base + i * 13))
                .collect();
            black_box(table.batch_get(&keys, &ReadOptions::latest()).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_point_ops, bench_batches);
criterion_main!(benches);
