//! Wall-clock micro-benchmarks of the MOIST core paths: the three update
//! branches, NN search, clustering and hexagonal binning.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use moist::bigtable::{Bigtable, Timestamp};
use moist::core::{HexGrid, MoistConfig, MoistServer, NnOptions, ObjectId, UpdateMessage};
use moist::spatial::{Point, Velocity};

fn loaded_server(n: u64, epsilon: f64) -> MoistServer {
    let store = Bigtable::new();
    let cfg = MoistConfig {
        epsilon,
        ..MoistConfig::default()
    };
    let mut server = MoistServer::new(&store, cfg).unwrap();
    let mut state = 0x5EED_u64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..n {
        server
            .update(&UpdateMessage {
                oid: ObjectId(i),
                loc: Point::new(rnd() * 1000.0, rnd() * 1000.0),
                vel: Velocity::new(rnd() * 2.0 - 1.0, rnd() * 2.0 - 1.0),
                ts: Timestamp::from_secs(1),
            })
            .unwrap();
    }
    server
}

fn bench_update_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("update");
    group.bench_function("leader_update_100k_objects", |b| {
        let mut server = loaded_server(100_000, 0.0);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            server
                .update(&UpdateMessage {
                    oid: ObjectId(i),
                    loc: Point::new((i % 1000) as f64, (i % 997) as f64),
                    vel: Velocity::new(1.0, 0.0),
                    ts: Timestamp::from_secs(2),
                })
                .unwrap()
        })
    });
    group.bench_function("shed_follower_update", |b| {
        // Build a two-object school; the follower's updates all shed.
        let mut server = loaded_server(10, 50.0);
        // Make object 1 a follower of 0 via clustering of co-movers.
        server
            .update(&UpdateMessage {
                oid: ObjectId(0),
                loc: Point::new(100.0, 100.0),
                vel: Velocity::new(1.0, 0.0),
                ts: Timestamp::from_secs(2),
            })
            .unwrap();
        server
            .update(&UpdateMessage {
                oid: ObjectId(1),
                loc: Point::new(101.0, 100.0),
                vel: Velocity::new(1.0, 0.0),
                ts: Timestamp::from_secs(2),
            })
            .unwrap();
        server.run_due_clustering(Timestamp::from_secs(60)).unwrap();
        b.iter(|| {
            server
                .update(&UpdateMessage {
                    oid: ObjectId(1),
                    loc: Point::new(101.0, 100.0),
                    vel: Velocity::new(1.0, 0.0),
                    ts: Timestamp::from_secs(61),
                })
                .unwrap()
        })
    });
    group.finish();
}

fn bench_nn(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn");
    group.sample_size(30);
    let server = loaded_server(100_000, 0.0);
    group.bench_function("k10_flag_100k_objects", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 113.0) % 1000.0;
            black_box(
                server
                    .nn(Point::new(x, 1000.0 - x), 10, Timestamp::from_secs(1))
                    .unwrap(),
            )
        })
    });
    group.bench_function("k10_range50m_level6", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 113.0) % 1000.0;
            black_box(
                server
                    .nn_with_options(
                        Point::new(x, 1000.0 - x),
                        Timestamp::from_secs(1),
                        &NnOptions::within(10, 6, 50.0),
                    )
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster");
    group.sample_size(10);
    group.bench_function("sweep_10k_objects", |b| {
        let mut server = loaded_server(10_000, 20.0);
        let mut t = 60u64;
        b.iter(|| {
            t += 60;
            black_box(server.run_due_clustering(Timestamp::from_secs(t)).unwrap())
        })
    });
    group.finish();
}

fn bench_hexgrid(c: &mut Criterion) {
    let grid = HexGrid::new(2.0);
    c.bench_function("hexgrid/bin", |b| {
        let mut v = 0.0f64;
        b.iter(|| {
            v = (v + 0.37) % 4.0;
            black_box(grid.bin(&Velocity::new(v - 2.0, 2.0 - v)))
        })
    });
}

criterion_group!(
    benches,
    bench_update_paths,
    bench_nn,
    bench_clustering,
    bench_hexgrid
);
criterion_main!(benches);
