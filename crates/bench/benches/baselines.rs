//! Wall-clock micro-benchmarks of the comparator indexes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use moist::baselines::{BxConfig, BxTree, DynamicClusterIndex, StaticClusterIndex};
use moist::bigtable::{Bigtable, CostProfile, Timestamp};
use moist::spatial::{Point, Space, Velocity};

fn bench_bxtree(c: &mut Criterion) {
    let store = Bigtable::new();
    let mut tree = BxTree::new(&store, Space::paper_map(), BxConfig::default(), "bx").unwrap();
    let mut session = store.session_with(CostProfile::free());
    let mut state = 0xB0_u64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..50_000u64 {
        tree.update(
            &mut session,
            i,
            &Point::new(rnd() * 1000.0, rnd() * 1000.0),
            &Velocity::new(rnd() * 2.0 - 1.0, rnd() * 2.0 - 1.0),
            Timestamp::from_secs(1),
        )
        .unwrap();
    }
    let mut group = c.benchmark_group("bxtree");
    group.bench_function("update_50k_objects", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 50_000;
            tree.update(
                &mut session,
                i,
                &Point::new((i % 1000) as f64, (i % 977) as f64),
                &Velocity::new(0.5, -0.5),
                Timestamp::from_secs(2),
            )
            .unwrap()
        })
    });
    group.sample_size(20);
    group.bench_function("knn_k10_50k_objects", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 131.0) % 1000.0;
            black_box(
                tree.knn(
                    &mut session,
                    Point::new(x, 1000.0 - x),
                    10,
                    Timestamp::from_secs(2),
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_clustering_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_baselines");
    group.bench_function("static_prototype_update", |b| {
        let store = Bigtable::new();
        let protos = StaticClusterIndex::prototype_set(8, &[0.5, 1.0, 1.5, 2.0]);
        let mut idx = StaticClusterIndex::new(&store, protos, 10.0, "st").unwrap();
        let mut session = store.session_with(CostProfile::free());
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            idx.update(
                &mut session,
                t % 1000,
                &Point::new((t % 997) as f64, 10.0),
                &Velocity::new(1.0, 0.0),
                Timestamp::from_secs(t),
            )
            .unwrap()
        })
    });
    group.bench_function("dynamic_center_update", |b| {
        let store = Bigtable::new();
        let mut idx = DynamicClusterIndex::new(&store, 50.0, "dy").unwrap();
        let mut session = store.session_with(CostProfile::free());
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            idx.update(
                &mut session,
                t % 1000,
                &Point::new((t % 997) as f64, 10.0),
                &Velocity::new(1.0, 0.0),
                Timestamp::from_secs(t),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bxtree, bench_clustering_baselines);
criterion_main!(benches);
