//! Wall-clock micro-benchmarks of the spatial substrate: curve encoding,
//! cell algebra and rectangle covering.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use moist::spatial::{cover_rect, CellId, CurveKind, Point, Rect, Space};

fn bench_curves(c: &mut Criterion) {
    let mut group = c.benchmark_group("curve");
    for kind in [CurveKind::Hilbert, CurveKind::Morton] {
        group.bench_function(format!("{kind:?}/encode_level20"), |b| {
            let mut i = 0u32;
            b.iter(|| {
                i = i.wrapping_add(2654435761);
                let x = i >> 12;
                let y = i.rotate_left(16) >> 12;
                black_box(kind.index(20, x, y))
            })
        });
        group.bench_function(format!("{kind:?}/decode_level20"), |b| {
            let mut d = 0u64;
            b.iter(|| {
                d = d.wrapping_add(0x9E3779B97F4A7C15) & ((1u64 << 40) - 1);
                black_box(kind.coords(20, d))
            })
        });
    }
    group.finish();
}

fn bench_cells(c: &mut Criterion) {
    let space = Space::paper_map();
    let mut group = c.benchmark_group("cell");
    group.bench_function("from_point_leaf", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 37.77) % 1000.0;
            black_box(space.leaf_cell(&Point::new(x, 1000.0 - x)))
        })
    });
    group.bench_function("edge_neighbors", |b| {
        let cell = space.cell_at(10, &Point::new(500.0, 500.0));
        b.iter(|| black_box(cell.edge_neighbors(CurveKind::Hilbert)))
    });
    group.bench_function("descendant_range", |b| {
        let cell = space.cell_at(6, &Point::new(500.0, 500.0));
        b.iter(|| black_box(cell.descendant_range(20)))
    });
    group.bench_function("ancestor_chain", |b| {
        let cell = space.leaf_cell(&Point::new(123.0, 456.0));
        b.iter(|| {
            let mut c: CellId = cell;
            while let Some(p) = c.parent() {
                c = p;
            }
            black_box(c)
        })
    });
    group.finish();
}

fn bench_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("cover_rect");
    for side in [0.01f64, 0.05, 0.2] {
        group.bench_function(format!("level8_side_{side}"), |b| {
            let rect = Rect::new(0.4, 0.4, 0.4 + side, 0.4 + side);
            b.iter(|| black_box(cover_rect(CurveKind::Hilbert, 8, &rect)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_curves, bench_cells, bench_cover);
criterion_main!(benches);
