//! The store: a namespace of tables plus global configuration.

use crate::cost::CostProfile;
use crate::error::{BigtableError, Result};
use crate::metrics::MetricsSnapshot;
use crate::schema::TableSchema;
use crate::session::Session;
use crate::table::Table;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Store-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Tablets split above this many rows (BigTable's automatic sharding).
    pub max_rows_per_tablet: usize,
    /// Cost profile handed to new sessions.
    pub cost_profile: CostProfile,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            max_rows_per_tablet: 65_536,
            cost_profile: CostProfile::default(),
        }
    }
}

/// An in-process store with BigTable semantics.
///
/// Cloneable via `Arc`; multiple front-end servers share one store exactly
/// like the paper's multi-server deployment shares one BigTable (§4.3.3).
pub struct Bigtable {
    config: StoreConfig,
    tables: RwLock<HashMap<String, Arc<Table>>>,
}

impl Bigtable {
    /// Creates an empty store with the default configuration.
    pub fn new() -> Arc<Self> {
        Self::with_config(StoreConfig::default())
    }

    /// Creates an empty store.
    pub fn with_config(config: StoreConfig) -> Arc<Self> {
        Arc::new(Bigtable {
            config,
            tables: RwLock::new(HashMap::new()),
        })
    }

    /// The store configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Creates a table from a schema. Fails if the name is taken.
    pub fn create_table(&self, schema: TableSchema) -> Result<Arc<Table>> {
        let mut tables = self.tables.write();
        if tables.contains_key(&schema.name) {
            return Err(BigtableError::TableExists(schema.name));
        }
        let name = schema.name.clone();
        let table = Arc::new(Table::new(schema, self.config.max_rows_per_tablet));
        tables.insert(name, Arc::clone(&table));
        Ok(table)
    }

    /// Opens an existing table.
    pub fn open_table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| BigtableError::UnknownTable(name.to_string()))
    }

    /// Drops a table. Outstanding `Arc<Table>` handles keep working but the
    /// name becomes free.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.tables
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| BigtableError::UnknownTable(name.to_string()))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Sum of all tables' metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let tables = self.tables.read();
        let mut total = MetricsSnapshot::default();
        for t in tables.values() {
            let s = t.metrics().snapshot();
            total.read_ops += s.read_ops;
            total.rows_read += s.rows_read;
            total.bytes_read += s.bytes_read;
            total.write_ops += s.write_ops;
            total.mutations += s.mutations;
            total.bytes_written += s.bytes_written;
            total.scan_ops += s.scan_ops;
            total.rows_scanned += s.rows_scanned;
            total.batch_ops += s.batch_ops;
        }
        total
    }

    /// Opens a cost-charged session using the store's default profile.
    pub fn session(self: &Arc<Self>) -> Session {
        Session::new(Arc::clone(self), self.config.cost_profile)
    }

    /// Opens a session with an explicit profile (e.g. [`CostProfile::free`]
    /// in tests).
    pub fn session_with(self: &Arc<Self>, profile: CostProfile) -> Session {
        Session::new(Arc::clone(self), profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnFamily;

    fn schema(name: &str) -> TableSchema {
        TableSchema::new(name, vec![ColumnFamily::in_memory("f", 1)]).unwrap()
    }

    #[test]
    fn create_open_drop() {
        let store = Bigtable::new();
        store.create_table(schema("a")).unwrap();
        store.create_table(schema("b")).unwrap();
        assert_eq!(store.table_names(), vec!["a", "b"]);
        assert!(matches!(
            store.create_table(schema("a")),
            Err(BigtableError::TableExists(_))
        ));
        assert!(store.open_table("a").is_ok());
        store.drop_table("a").unwrap();
        assert!(matches!(
            store.open_table("a"),
            Err(BigtableError::UnknownTable(_))
        ));
        assert!(store.drop_table("a").is_err());
    }

    #[test]
    fn metrics_aggregate_across_tables() {
        let store = Bigtable::new();
        let a = store.create_table(schema("a")).unwrap();
        let b = store.create_table(schema("b")).unwrap();
        use crate::table::Mutation;
        use crate::types::{RowKey, Timestamp};
        a.mutate_row(
            &RowKey::from_u64(1),
            &[Mutation::put("f", "q", Timestamp(0), &b"x"[..])],
        )
        .unwrap();
        b.mutate_row(
            &RowKey::from_u64(1),
            &[Mutation::put("f", "q", Timestamp(0), &b"y"[..])],
        )
        .unwrap();
        assert_eq!(store.metrics_snapshot().write_ops, 2);
    }
}
