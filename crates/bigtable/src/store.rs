//! The store: a namespace of tables plus global configuration.

use crate::cost::CostProfile;
use crate::error::{BigtableError, Result};
use crate::metrics::MetricsSnapshot;
use crate::schema::TableSchema;
use crate::session::Session;
use crate::table::Table;
use crate::wal::{self, Durability, RecoveryReport, WalWriter};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Store-wide configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Tablets split above this many rows (BigTable's automatic sharding).
    pub max_rows_per_tablet: usize,
    /// Cost profile handed to new sessions.
    pub cost_profile: CostProfile,
    /// Whether tables write a WAL (and can be recovered after a crash).
    /// Defaults to [`Durability::None`]: purely in-memory, bit-identical
    /// to the pre-durability store.
    pub durability: Durability,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            max_rows_per_tablet: 65_536,
            cost_profile: CostProfile::default(),
            durability: Durability::None,
        }
    }
}

/// An in-process store with BigTable semantics.
///
/// Cloneable via `Arc`; multiple front-end servers share one store exactly
/// like the paper's multi-server deployment shares one BigTable (§4.3.3).
pub struct Bigtable {
    config: StoreConfig,
    tables: RwLock<HashMap<String, Arc<Table>>>,
}

impl Bigtable {
    /// Creates an empty store with the default configuration.
    pub fn new() -> Arc<Self> {
        Self::with_config(StoreConfig::default())
    }

    /// Creates an empty store.
    pub fn with_config(config: StoreConfig) -> Arc<Self> {
        Arc::new(Bigtable {
            config,
            tables: RwLock::new(HashMap::new()),
        })
    }

    /// The store configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Creates a table from a schema. Fails if the name is taken. On a
    /// durable store this creates `<dir>/<name>.wal` and appends the
    /// schema as its first record before the table accepts writes.
    pub fn create_table(&self, schema: TableSchema) -> Result<Arc<Table>> {
        let mut tables = self.tables.write();
        if tables.contains_key(&schema.name) {
            return Err(BigtableError::TableExists(schema.name));
        }
        let writer = match &self.config.durability {
            Durability::None => None,
            Durability::Wal { dir, fsync_every } => {
                std::fs::create_dir_all(dir).map_err(|e| {
                    BigtableError::Wal(format!("create wal dir {}: {e}", dir.display()))
                })?;
                let mut w = WalWriter::create(wal::wal_path(dir, &schema.name), *fsync_every, 1)?;
                w.append(&wal::encode_schema(&schema))?;
                Some(w)
            }
        };
        let name = schema.name.clone();
        let table = Arc::new(Table::new(schema, self.config.max_rows_per_tablet, writer));
        tables.insert(name, Arc::clone(&table));
        Ok(table)
    }

    /// Opens an existing table.
    pub fn open_table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| BigtableError::UnknownTable(name.to_string()))
    }

    /// Drops a table. Outstanding `Arc<Table>` handles keep working but the
    /// name becomes free. On a durable store the table's WAL and snapshot
    /// files are deleted, so a later [`Bigtable::recover`] does not
    /// resurrect it (outstanding handles keep writing to the unlinked
    /// log, which is exactly "dropped but still open").
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.tables
            .write()
            .remove(name)
            .ok_or_else(|| BigtableError::UnknownTable(name.to_string()))?;
        if let Durability::Wal { dir, .. } = &self.config.durability {
            let wal_path = wal::wal_path(dir, name);
            for path in [wal_path.with_extension("snap"), wal_path] {
                if let Err(e) = std::fs::remove_file(&path) {
                    if e.kind() != std::io::ErrorKind::NotFound {
                        return Err(BigtableError::Wal(format!(
                            "remove {}: {e}",
                            path.display()
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Rebuilds a store from the WAL directory named by
    /// `config.durability` (which must be [`Durability::Wal`]): for every
    /// table found on disk, loads its snapshot if one exists, replays the
    /// log on top in append order, truncates a torn final record to the
    /// last consistent cut, and reopens the log for appends at that cut.
    /// Replay is idempotent, so recovering twice — or recovering a log
    /// whose prefix is already covered by the snapshot — converges to the
    /// same state.
    pub fn recover(config: StoreConfig) -> Result<(Arc<Self>, RecoveryReport)> {
        let Durability::Wal { dir, fsync_every } = config.durability.clone() else {
            return Err(BigtableError::Wal(
                "recover requires StoreConfig.durability = Durability::Wal".to_string(),
            ));
        };
        let mut report = RecoveryReport::default();
        let mut tables = HashMap::new();
        for name in wal::scan_tables(&dir)? {
            let wal_path = wal::wal_path(&dir, &name);
            let snap_path = wal_path.with_extension("snap");

            // Snapshot first: it defines the base state, the schema, and
            // (via its frame's sequence number) the last log record it
            // covers.
            let mut table: Option<Table> = None;
            let mut base_seq = 0u64;
            if snap_path.exists() {
                let bytes = std::fs::read(&snap_path).map_err(|e| {
                    BigtableError::Wal(format!("read {}: {e}", snap_path.display()))
                })?;
                let (frames, _, torn) = wal::parse_frames(&bytes);
                if torn || frames.len() != 1 {
                    // write_snapshot publishes via rename, so a snapshot is
                    // all-or-nothing; anything else is real corruption.
                    return Err(BigtableError::Wal(format!(
                        "snapshot {} is corrupt",
                        snap_path.display()
                    )));
                }
                base_seq = frames[0].seq;
                let mut r = wal::Reader::new(frames[0].payload);
                let schema = match wal::read_snapshot_schema(&mut r)? {
                    Some(schema) => schema,
                    None => {
                        return Err(BigtableError::Wal(format!(
                            "snapshot {} does not start with a schema",
                            snap_path.display()
                        )))
                    }
                };
                let t = Table::new(schema, config.max_rows_per_tablet, None);
                t.load_snapshot_rows(&mut r)?;
                table = Some(t);
            }

            // Then the log tail (or the whole log when no snapshot).
            let log_bytes = if wal_path.exists() {
                std::fs::read(&wal_path)
                    .map_err(|e| BigtableError::Wal(format!("read {}: {e}", wal_path.display())))?
            } else {
                Vec::new()
            };
            let (frames, cut, torn) = wal::parse_frames(&log_bytes);
            let mut frames = frames.into_iter();
            let mut table = match table {
                Some(t) => t,
                None => {
                    // No snapshot: the first record must be the schema.
                    let Some(first) = frames.next() else {
                        report.skipped_tables += 1; // creation never finished
                        continue;
                    };
                    match wal::decode_record(first.payload)? {
                        wal::WalRecord::Schema(schema) => {
                            // The schema frame is the replay baseline, so
                            // the loop below never reuses its seq.
                            base_seq = first.seq;
                            Table::new(schema, config.max_rows_per_tablet, None)
                        }
                        _ => {
                            return Err(BigtableError::Wal(format!(
                                "wal {} has no snapshot and does not start with a schema",
                                wal_path.display()
                            )))
                        }
                    }
                }
            };
            let mut next_seq = base_seq + 1;
            for frame in frames {
                next_seq = frame.seq + 1;
                if frame.seq <= base_seq {
                    continue; // already contained in the snapshot
                }
                report.replayed_records += 1;
                report.replayed_bytes += frame.payload.len() as u64;
                table.apply_replayed(wal::decode_record(frame.payload)?)?;
            }
            if torn {
                report.truncated_tables += 1;
            }
            if wal_path.exists() {
                table.attach_wal(WalWriter::open_at(
                    wal_path,
                    fsync_every,
                    cut as u64,
                    next_seq,
                )?);
            } else {
                // Snapshot without a log (e.g. the log was lost): start a
                // fresh one so new writes are durable again.
                let mut w = WalWriter::create(wal::wal_path(&dir, &name), fsync_every, next_seq)?;
                w.append(&wal::encode_schema(table.schema()))?;
                table.attach_wal(w);
            }
            report.tables += 1;
            tables.insert(name, Arc::new(table));
        }
        let store = Arc::new(Bigtable {
            config,
            tables: RwLock::new(tables),
        });
        Ok((store, report))
    }

    /// Compacts every table: snapshot + log truncation (no-op per table
    /// on a non-durable store). Returns total snapshot bytes written.
    pub fn compact_all(&self) -> Result<u64> {
        let tables: Vec<Arc<Table>> = self.tables.read().values().cloned().collect();
        let mut bytes = 0u64;
        for t in tables {
            bytes += t.compact()?;
        }
        Ok(bytes)
    }

    /// Sum of all tables' metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let tables = self.tables.read();
        let mut total = MetricsSnapshot::default();
        for t in tables.values() {
            let s = t.metrics().snapshot();
            total.read_ops += s.read_ops;
            total.rows_read += s.rows_read;
            total.bytes_read += s.bytes_read;
            total.write_ops += s.write_ops;
            total.mutations += s.mutations;
            total.bytes_written += s.bytes_written;
            total.scan_ops += s.scan_ops;
            total.rows_scanned += s.rows_scanned;
            total.batch_ops += s.batch_ops;
            total.wal_appends += s.wal_appends;
            total.wal_bytes += s.wal_bytes;
            total.wal_fsyncs += s.wal_fsyncs;
            total.wal_replayed += s.wal_replayed;
        }
        total
    }

    /// Opens a cost-charged session using the store's default profile.
    pub fn session(self: &Arc<Self>) -> Session {
        Session::new(Arc::clone(self), self.config.cost_profile)
    }

    /// Opens a session with an explicit profile (e.g. [`CostProfile::free`]
    /// in tests).
    pub fn session_with(self: &Arc<Self>, profile: CostProfile) -> Session {
        Session::new(Arc::clone(self), profile)
    }

    /// Opens a session attached to a shared [`MeterHub`]: every charge
    /// is mirrored into the hub, and the session's private meter starts
    /// at the hub's current totals so absolute mid-call reads replay the
    /// single-shared-clock timeline exactly. This is what lets a server
    /// run query paths from `&self` — each call opens an ephemeral
    /// hubbed session instead of mutating one shared clock.
    pub fn session_with_hub(
        self: &Arc<Self>,
        profile: CostProfile,
        hub: Arc<crate::cost::MeterHub>,
    ) -> Session {
        Session::with_hub(Arc::clone(self), profile, hub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnFamily;

    fn schema(name: &str) -> TableSchema {
        TableSchema::new(name, vec![ColumnFamily::in_memory("f", 1)]).unwrap()
    }

    #[test]
    fn create_open_drop() {
        let store = Bigtable::new();
        store.create_table(schema("a")).unwrap();
        store.create_table(schema("b")).unwrap();
        assert_eq!(store.table_names(), vec!["a", "b"]);
        assert!(matches!(
            store.create_table(schema("a")),
            Err(BigtableError::TableExists(_))
        ));
        assert!(store.open_table("a").is_ok());
        store.drop_table("a").unwrap();
        assert!(matches!(
            store.open_table("a"),
            Err(BigtableError::UnknownTable(_))
        ));
        assert!(store.drop_table("a").is_err());
    }

    #[test]
    fn metrics_aggregate_across_tables() {
        let store = Bigtable::new();
        let a = store.create_table(schema("a")).unwrap();
        let b = store.create_table(schema("b")).unwrap();
        use crate::table::Mutation;
        use crate::types::{RowKey, Timestamp};
        a.mutate_row(
            &RowKey::from_u64(1),
            &[Mutation::put("f", "q", Timestamp(0), &b"x"[..])],
        )
        .unwrap();
        b.mutate_row(
            &RowKey::from_u64(1),
            &[Mutation::put("f", "q", Timestamp(0), &b"y"[..])],
        )
        .unwrap();
        assert_eq!(store.metrics_snapshot().write_ops, 2);
    }
}
