//! Error type for store operations.

use std::fmt;

/// Errors returned by the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BigtableError {
    /// The named table does not exist.
    UnknownTable(String),
    /// A table with this name already exists.
    TableExists(String),
    /// The named column family is not declared in the table schema.
    UnknownFamily {
        /// Table the lookup was made against.
        table: String,
        /// The family name that was not found.
        family: String,
    },
    /// A schema was declared with no column families or duplicate names.
    InvalidSchema(String),
    /// A scan or mutation referenced an invalid key range (start > end).
    InvalidRange,
    /// A write-ahead-log or snapshot operation failed: an I/O error, a
    /// corrupt record past the tolerated torn tail, or recovery invoked
    /// without [`Durability::Wal`](crate::Durability::Wal). The message is
    /// stringified so the error stays `Clone + PartialEq`.
    Wal(String),
}

impl fmt::Display for BigtableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BigtableError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            BigtableError::TableExists(t) => write!(f, "table already exists: {t}"),
            BigtableError::UnknownFamily { table, family } => {
                write!(f, "unknown column family {family:?} in table {table:?}")
            }
            BigtableError::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            BigtableError::InvalidRange => write!(f, "invalid key range: start > end"),
            BigtableError::Wal(msg) => write!(f, "wal error: {msg}"),
        }
    }
}

impl std::error::Error for BigtableError {}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, BigtableError>;
