//! Lock-free operation counters.
//!
//! The paper's §4.2 analysis counts "the number of read and write operations
//! performed by the server on BigTable … as this was the major bottleneck".
//! These counters are the measured quantity behind every figure we reproduce.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic operation counters for one table (or a whole store).
#[derive(Debug, Default)]
pub struct Metrics {
    read_ops: AtomicU64,
    rows_read: AtomicU64,
    bytes_read: AtomicU64,
    write_ops: AtomicU64,
    mutations: AtomicU64,
    bytes_written: AtomicU64,
    scan_ops: AtomicU64,
    rows_scanned: AtomicU64,
    batch_ops: AtomicU64,
    wal_appends: AtomicU64,
    wal_bytes: AtomicU64,
    wal_fsyncs: AtomicU64,
    wal_replayed: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Point-read RPCs issued.
    pub read_ops: u64,
    /// Rows actually returned by point reads.
    pub rows_read: u64,
    /// Payload bytes returned by reads and scans.
    pub bytes_read: u64,
    /// Write RPCs issued (single-row mutations).
    pub write_ops: u64,
    /// Individual mutations applied.
    pub mutations: u64,
    /// Payload bytes written.
    pub bytes_written: u64,
    /// Range-scan RPCs issued.
    pub scan_ops: u64,
    /// Rows returned by scans.
    pub rows_scanned: u64,
    /// Batch mutate-rows RPCs issued.
    pub batch_ops: u64,
    /// WAL records appended (one per write RPC on a durable table).
    pub wal_appends: u64,
    /// WAL bytes appended (frame headers + payloads).
    pub wal_bytes: u64,
    /// Explicit WAL fsyncs issued (paced by `fsync_every`).
    pub wal_fsyncs: u64,
    /// WAL records replayed during recovery.
    pub wal_replayed: u64,
}

impl MetricsSnapshot {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            read_ops: self.read_ops.saturating_sub(earlier.read_ops),
            rows_read: self.rows_read.saturating_sub(earlier.rows_read),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            write_ops: self.write_ops.saturating_sub(earlier.write_ops),
            mutations: self.mutations.saturating_sub(earlier.mutations),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            scan_ops: self.scan_ops.saturating_sub(earlier.scan_ops),
            rows_scanned: self.rows_scanned.saturating_sub(earlier.rows_scanned),
            batch_ops: self.batch_ops.saturating_sub(earlier.batch_ops),
            wal_appends: self.wal_appends.saturating_sub(earlier.wal_appends),
            wal_bytes: self.wal_bytes.saturating_sub(earlier.wal_bytes),
            wal_fsyncs: self.wal_fsyncs.saturating_sub(earlier.wal_fsyncs),
            wal_replayed: self.wal_replayed.saturating_sub(earlier.wal_replayed),
        }
    }

    /// All RPCs regardless of kind.
    pub fn total_rpcs(&self) -> u64 {
        self.read_ops + self.write_ops + self.scan_ops + self.batch_ops
    }
}

impl Metrics {
    pub(crate) fn record_read(&self, ops: u64, rows: u64, bytes: u64) {
        self.read_ops.fetch_add(ops, Ordering::Relaxed);
        self.rows_read.fetch_add(rows, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_write(&self, ops: u64, mutations: u64, bytes: u64) {
        self.write_ops.fetch_add(ops, Ordering::Relaxed);
        self.mutations.fetch_add(mutations, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_batch_write(&self, rows: u64, mutations: u64, bytes: u64) {
        self.batch_ops.fetch_add(1, Ordering::Relaxed);
        self.mutations.fetch_add(mutations, Ordering::Relaxed);
        self.rows_read.fetch_add(0, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        // Rows written through batches count as mutations already; track rows
        // via the scan counter? No: keep a dedicated field semantics simple —
        // batch row count folds into `mutations` and `batch_ops`.
        let _ = rows;
    }

    pub(crate) fn record_wal_append(&self, bytes: u64, fsynced: bool) {
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.wal_fsyncs
            .fetch_add(u64::from(fsynced), Ordering::Relaxed);
    }

    pub(crate) fn record_wal_replay(&self, records: u64) {
        self.wal_replayed.fetch_add(records, Ordering::Relaxed);
    }

    pub(crate) fn record_scan(&self, ops: u64, rows: u64, bytes: u64) {
        self.scan_ops.fetch_add(ops, Ordering::Relaxed);
        self.rows_scanned.fetch_add(rows, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            read_ops: self.read_ops.load(Ordering::Relaxed),
            rows_read: self.rows_read.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
            mutations: self.mutations.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            scan_ops: self.scan_ops.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            batch_ops: self.batch_ops.load(Ordering::Relaxed),
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            wal_fsyncs: self.wal_fsyncs.load(Ordering::Relaxed),
            wal_replayed: self.wal_replayed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta() {
        let m = Metrics::default();
        m.record_read(2, 1, 100);
        let a = m.snapshot();
        m.record_write(3, 5, 50);
        m.record_scan(1, 10, 500);
        let b = m.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.read_ops, 0);
        assert_eq!(d.write_ops, 3);
        assert_eq!(d.mutations, 5);
        assert_eq!(d.scan_ops, 1);
        assert_eq!(d.rows_scanned, 10);
        assert_eq!(d.total_rpcs(), 4);
        assert_eq!(b.total_rpcs(), 6);
    }
}
