//! The calibrated cost model and the virtual clock.
//!
//! Absolute QPS in the paper reflects Google's 2012 production BigTable;
//! here every operation is charged *virtual microseconds* from a
//! [`CostProfile`]. The profile encodes the cost **asymmetries** the paper's
//! conclusions rest on (§3.1, §4.2):
//!
//! * batch/range reads are far cheaper per row than point RPCs
//!   ("this reading method performs much faster");
//! * reads have "much better concurrency … than write ones", so writes
//!   are the scarce resource update shedding conserves;
//! * in-memory columns are orders of magnitude cheaper to read than
//!   disk columns;
//! * every RPC pays a fixed network round-trip floor.
//!
//! The default constants are chosen so one leader update (an Affiliation
//! read, a Location write, a two-mutation Spatial-Index batch and an L/F
//! refresh) lands near the paper's ≈0.127 ms (`8k+ updates/s` on one
//! server, §4.3.2). Everything else — shedding gains, clustering latencies,
//! NN QPS — *emerges* from op counts, not from further tuning.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Virtual-microsecond costs of store operations.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostProfile {
    /// Fixed per-RPC overhead (network RTT + server dispatch), µs.
    pub rpc_base_us: f64,
    /// Locating a row in the tablet index, µs per log₂(row-count) level.
    pub index_level_us: f64,
    /// Reading one row from an in-memory column, µs.
    pub read_row_us: f64,
    /// Applying one mutation, µs.
    pub mutation_us: f64,
    /// Per-row cost inside a range scan (sequential memtable walk), µs.
    pub scan_row_us: f64,
    /// Per-row cost inside a batch mutation (amortised dispatch), µs.
    pub batch_row_us: f64,
    /// Extra cost when a read touches a `Disk`-locality family, µs
    /// (SSTable block fetch).
    pub disk_read_us: f64,
    /// Transfer cost per payload byte, µs.
    pub byte_us: f64,
    /// Appending one record to a table's write-ahead log (sequential file
    /// write, no seek), µs. Charged only on durable stores.
    pub wal_append_us: f64,
    /// One explicit WAL fsync, µs. Group commit divides this by
    /// `fsync_every`, so the charged per-write cost is the amortised
    /// `wal_fsync_us / fsync_every`.
    pub wal_fsync_us: f64,
    /// Replaying one WAL record during recovery, µs (sequential read +
    /// re-apply; used to price recovery time in `fig19_durability`).
    pub wal_replay_us: f64,
}

impl Default for CostProfile {
    fn default() -> Self {
        CostProfile {
            rpc_base_us: 15.0,
            index_level_us: 0.8,
            read_row_us: 4.0,
            mutation_us: 6.0,
            scan_row_us: 2.5,
            batch_row_us: 0.5,
            disk_read_us: 900.0,
            byte_us: 0.002,
            wal_append_us: 2.0,
            wal_fsync_us: 120.0,
            wal_replay_us: 1.0,
        }
    }
}

impl CostProfile {
    /// A zero-cost profile for unit tests that only care about semantics.
    pub fn free() -> Self {
        CostProfile {
            rpc_base_us: 0.0,
            index_level_us: 0.0,
            read_row_us: 0.0,
            mutation_us: 0.0,
            scan_row_us: 0.0,
            batch_row_us: 0.0,
            disk_read_us: 0.0,
            byte_us: 0.0,
            wal_append_us: 0.0,
            wal_fsync_us: 0.0,
            wal_replay_us: 0.0,
        }
    }

    /// Cost of navigating the row index of a table with `rows` rows.
    #[inline]
    pub fn index_nav_us(&self, rows: u64) -> f64 {
        self.index_level_us * (rows.max(2) as f64).log2()
    }

    /// Cost of one point read returning `bytes` payload bytes.
    pub fn point_read_us(&self, rows_in_table: u64, bytes: u64, touches_disk: bool) -> f64 {
        self.rpc_base_us
            + self.index_nav_us(rows_in_table)
            + self.read_row_us
            + bytes as f64 * self.byte_us
            + if touches_disk { self.disk_read_us } else { 0.0 }
    }

    /// Cost of one single-row write with `mutations` mutations.
    pub fn write_us(&self, rows_in_table: u64, mutations: u64, bytes: u64) -> f64 {
        self.rpc_base_us
            + self.index_nav_us(rows_in_table)
            + mutations as f64 * self.mutation_us
            + bytes as f64 * self.byte_us
    }

    /// Cost of one batch write of `rows` rows / `mutations` mutations.
    ///
    /// Batched mutations are group-committed log appends — an order of
    /// magnitude cheaper per mutation than point writes, and cheaper per
    /// row than batch *reads* (writes return no data). This asymmetry is
    /// why clustering latency is read-dominated (Figure 10).
    pub fn batch_write_us(&self, rows: u64, mutations: u64, bytes: u64) -> f64 {
        self.rpc_base_us
            + rows as f64 * self.batch_row_us
            + mutations as f64 * self.mutation_us * 0.125
            + bytes as f64 * self.byte_us
    }

    /// Durability surcharge for one write RPC that appended `bytes` WAL
    /// bytes under an `fsync_every` cadence. The fsync is charged
    /// amortised (group commit), keeping virtual time deterministic;
    /// `fsync_every == 0` means "no explicit fsync" and charges none.
    pub fn wal_write_us(&self, bytes: u64, fsync_every: u64) -> f64 {
        let fsync = if fsync_every == 0 {
            0.0
        } else {
            self.wal_fsync_us / fsync_every as f64
        };
        self.wal_append_us + bytes as f64 * self.byte_us + fsync
    }

    /// Cost of replaying `records` WAL records totalling `bytes` bytes
    /// during recovery.
    pub fn replay_us(&self, records: u64, bytes: u64) -> f64 {
        records as f64 * self.wal_replay_us + bytes as f64 * self.byte_us
    }

    /// Cost of one range scan returning `rows` rows / `bytes` bytes.
    pub fn scan_us(&self, rows_in_table: u64, rows: u64, bytes: u64, touches_disk: bool) -> f64 {
        self.rpc_base_us
            + self.index_nav_us(rows_in_table)
            + rows as f64 * self.scan_row_us
            + bytes as f64 * self.byte_us
            + if touches_disk { self.disk_read_us } else { 0.0 }
    }
}

/// A per-client virtual clock accumulating modelled time.
///
/// Deliberately not shared: each simulated server/client owns one, so
/// virtual timelines stay deterministic regardless of OS scheduling.
#[derive(Debug, Default, Clone)]
pub struct SimClock {
    us: f64,
}

impl SimClock {
    /// A clock at zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// A clock pre-advanced to `us` — used to seed a per-call meter from
    /// a [`MeterHub`] snapshot so absolute mid-call reads reproduce the
    /// single-shared-clock timeline bit-for-bit.
    pub fn starting_at(us: f64) -> Self {
        SimClock { us }
    }

    /// Current virtual time in microseconds.
    #[inline]
    pub fn now_us(&self) -> f64 {
        self.us
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now_secs(&self) -> f64 {
        self.us / 1e6
    }

    /// Advances by `us` microseconds (negative charges are ignored).
    #[inline]
    pub fn charge_us(&mut self, us: f64) {
        if us > 0.0 {
            self.us += us;
        }
    }

    /// Resets to zero and returns the elapsed microseconds.
    pub fn reset(&mut self) -> f64 {
        std::mem::take(&mut self.us)
    }
}

/// A private, per-call accumulator of virtual time and op counts.
///
/// Each query/update call owns one meter (inside its [`Session`]); the
/// charges are folded into the shared per-server [`MeterHub`] as they
/// happen, so concurrent calls never contend on a `&mut` clock and
/// single-threaded totals replay the exact `f64` addition sequence of a
/// single shared clock.
///
/// [`Session`]: crate::session::Session
#[derive(Debug, Default, Clone)]
pub struct CostMeter {
    clock: SimClock,
    ops: u64,
}

impl CostMeter {
    /// A meter at zero.
    pub fn new() -> Self {
        CostMeter::default()
    }

    /// A meter seeded at `us` microseconds / `ops` operations — the
    /// hub's totals at call start — so absolute reads mid-call match the
    /// old single-clock values exactly.
    pub fn starting_at(us: f64, ops: u64) -> Self {
        CostMeter {
            clock: SimClock::starting_at(us),
            ops,
        }
    }

    /// Advances by `us` microseconds (negative charges are ignored,
    /// matching [`SimClock::charge_us`]).
    #[inline]
    pub fn charge_us(&mut self, us: f64) {
        self.clock.charge_us(us);
    }

    /// Counts one store operation.
    #[inline]
    pub fn note_op(&mut self) {
        self.ops += 1;
    }

    /// Virtual microseconds accumulated (including any seed).
    #[inline]
    pub fn elapsed_us(&self) -> f64 {
        self.clock.now_us()
    }

    /// Operations counted (including any seed).
    #[inline]
    pub fn op_count(&self) -> u64 {
        self.ops
    }

    /// Resets to zero, returning elapsed microseconds.
    pub fn reset(&mut self) -> f64 {
        self.ops = 0;
        self.clock.reset()
    }
}

/// A shared, lock-free accumulator of virtual time and op counts.
///
/// One hub per simulated server. Elapsed time is stored as the `f64`
/// bit pattern inside an `AtomicU64` and advanced with a compare-and-swap
/// loop, so read paths taking `&self` can charge cost without a `&mut`
/// clock. The `us > 0.0` guard replicates [`SimClock::charge_us`]
/// exactly: on a single thread the hub applies the same additions in the
/// same order as one shared clock would, keeping virtual-time totals
/// bit-identical. Under true concurrency the op counter stays exact and
/// the elapsed total is order-dependent only in the final `f64` ulps.
#[derive(Debug, Default)]
pub struct MeterHub {
    elapsed_bits: AtomicU64,
    ops: AtomicU64,
}

impl MeterHub {
    /// A hub at zero.
    pub fn new() -> Self {
        MeterHub::default()
    }

    /// Advances by `us` microseconds (negative charges are ignored).
    pub fn charge_us(&self, us: f64) {
        if us > 0.0 {
            let mut cur = self.elapsed_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + us).to_bits();
                match self.elapsed_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    /// Counts one store operation.
    #[inline]
    pub fn note_op(&self) {
        self.ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds a finished per-call meter's totals in at once (coarse
    /// variant of the per-charge mirroring [`Session`] does; exercised
    /// by the lossless-folding property tests).
    ///
    /// [`Session`]: crate::session::Session
    pub fn fold(&self, meter: &CostMeter) {
        self.charge_us(meter.elapsed_us());
        self.ops.fetch_add(meter.op_count(), Ordering::Relaxed);
    }

    /// Virtual microseconds accumulated so far.
    pub fn elapsed_us(&self) -> f64 {
        f64::from_bits(self.elapsed_bits.load(Ordering::Relaxed))
    }

    /// Operations counted so far.
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Resets both counters to zero, returning elapsed microseconds.
    pub fn reset(&self) -> f64 {
        self.ops.store(0, Ordering::Relaxed);
        f64::from_bits(self.elapsed_bits.swap(0f64.to_bits(), Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_lands_near_the_papers_update_cost() {
        // One leader update at 1M rows: Affiliation point read + Location
        // 1-mutation write + Spatial 2-row batch (delete+put) + Affiliation
        // L/F refresh write (the leaf-tracking write of Algorithm 1).
        let p = CostProfile::default();
        let rows = 1_000_000;
        let us = p.point_read_us(rows, 24, false)
            + p.write_us(rows, 1, 40)
            + p.batch_write_us(2, 2, 40)
            + p.write_us(rows, 1, 33);
        // The paper reports "less than 0.2 ms" amortised per update and
        // 7,875 QPS at 1M objects — i.e. ~0.127 ms.
        assert!(
            us > 100.0 && us < 200.0,
            "update cost {us} µs off-calibration"
        );
        let qps = 1e6 / us;
        assert!(qps > 5_000.0 && qps < 10_000.0, "QPS {qps} off-calibration");
    }

    #[test]
    fn batch_rows_are_cheaper_than_point_ops() {
        let p = CostProfile::default();
        let point = 100.0 * p.write_us(1_000_000, 1, 20);
        let batch = p.batch_write_us(100, 100, 2000);
        assert!(
            batch < point / 4.0,
            "batching must be far cheaper: {batch} vs {point}"
        );
        let scan = p.scan_us(1_000_000, 100, 2000, false);
        let point_reads = 100.0 * p.point_read_us(1_000_000, 20, false);
        assert!(scan < point_reads / 4.0);
    }

    #[test]
    fn disk_reads_are_much_more_expensive() {
        let p = CostProfile::default();
        let mem = p.point_read_us(1000, 20, false);
        let disk = p.point_read_us(1000, 20, true);
        assert!(disk > 10.0 * mem);
    }

    #[test]
    fn index_cost_grows_with_table_size() {
        let p = CostProfile::default();
        assert!(p.point_read_us(1 << 20, 0, false) > p.point_read_us(1 << 10, 0, false));
    }

    #[test]
    fn hub_replays_the_same_addition_sequence_as_one_clock() {
        // Single-threaded bit-identicality: charging the hub in the same
        // order as a SimClock yields the exact same f64 bits.
        let charges = [15.0, 0.8, 4.0, -3.0, 0.0, 900.0, 0.002, 2.5];
        let mut clock = SimClock::new();
        let hub = MeterHub::new();
        for &c in &charges {
            clock.charge_us(c);
            hub.charge_us(c);
        }
        assert_eq!(clock.now_us().to_bits(), hub.elapsed_us().to_bits());
        assert_eq!(hub.reset().to_bits(), clock.reset().to_bits());
        assert_eq!(hub.elapsed_us(), 0.0);
    }

    #[test]
    fn seeded_meter_matches_absolute_timeline() {
        // An ephemeral meter seeded at the hub's snapshot sees the same
        // absolute values a single shared clock would have shown.
        let mut shared = SimClock::new();
        let hub = MeterHub::new();
        shared.charge_us(123.25);
        hub.charge_us(123.25);
        let mut meter = CostMeter::starting_at(hub.elapsed_us(), hub.op_count());
        for &c in &[4.0, 6.0, 0.5] {
            shared.charge_us(c);
            meter.charge_us(c);
            hub.charge_us(c);
            meter.note_op();
            hub.note_op();
        }
        assert_eq!(meter.elapsed_us().to_bits(), shared.now_us().to_bits());
        assert_eq!(meter.elapsed_us().to_bits(), hub.elapsed_us().to_bits());
        assert_eq!(meter.op_count(), hub.op_count());
        assert_eq!(hub.op_count(), 3);
    }

    #[test]
    fn hub_fold_accumulates_meter_totals() {
        let hub = MeterHub::new();
        let mut a = CostMeter::new();
        a.charge_us(10.0);
        a.note_op();
        let mut b = CostMeter::new();
        b.charge_us(2.5);
        b.note_op();
        b.note_op();
        hub.fold(&a);
        hub.fold(&b);
        assert_eq!(hub.elapsed_us(), 12.5);
        assert_eq!(hub.op_count(), 3);
    }

    #[test]
    fn hub_charges_survive_threads() {
        use std::sync::Arc;
        let hub = Arc::new(MeterHub::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let hub = Arc::clone(&hub);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        hub.charge_us(0.25); // dyadic: f64 addition is exact
                        hub.note_op();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hub.elapsed_us(), 8.0 * 1000.0 * 0.25);
        assert_eq!(hub.op_count(), 8000);
    }

    #[test]
    fn clock_accumulates_and_resets() {
        let mut c = SimClock::new();
        c.charge_us(10.0);
        c.charge_us(-5.0); // ignored
        c.charge_us(2.5);
        assert!((c.now_us() - 12.5).abs() < 1e-12);
        assert!((c.now_secs() - 12.5e-6).abs() < 1e-15);
        assert!((c.reset() - 12.5).abs() < 1e-12);
        assert_eq!(c.now_us(), 0.0);
    }
}
