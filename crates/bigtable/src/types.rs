//! Fundamental value types: row keys, timestamps, cells.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A row key: an arbitrary byte string; rows are stored in lexicographic
/// key order, which is what makes contiguous-range batch reads fast (§3.1).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct RowKey(pub Vec<u8>);

impl RowKey {
    /// Empty key — the smallest possible key, used as a range start.
    pub const MIN: RowKey = RowKey(Vec::new());

    /// Builds a key from raw bytes.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        RowKey(bytes.into())
    }

    /// Builds a key from a `u64` in big-endian order so that numeric order
    /// equals byte order. This is how spatial indexes and object ids become
    /// scan-friendly keys.
    pub fn from_u64(v: u64) -> Self {
        RowKey(v.to_be_bytes().to_vec())
    }

    /// Reads back a key created by [`RowKey::from_u64`].
    pub fn as_u64(&self) -> Option<u64> {
        let arr: [u8; 8] = self.0.as_slice().try_into().ok()?;
        Some(u64::from_be_bytes(arr))
    }

    /// Builds a composite key `prefix ∥ u64` (e.g. `cell-index ∥ object-id`
    /// rows in the Spatial Index Table).
    pub fn composite(prefix: u64, suffix: u64) -> Self {
        let mut v = Vec::with_capacity(16);
        v.extend_from_slice(&prefix.to_be_bytes());
        v.extend_from_slice(&suffix.to_be_bytes());
        RowKey(v)
    }

    /// Splits a composite key back into `(prefix, suffix)`.
    pub fn split_composite(&self) -> Option<(u64, u64)> {
        if self.0.len() != 16 {
            return None;
        }
        let p = u64::from_be_bytes(self.0[..8].try_into().ok()?);
        let s = u64::from_be_bytes(self.0[8..].try_into().ok()?);
        Some((p, s))
    }

    /// Key length in bytes (used for transfer-cost accounting).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the key is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The smallest key strictly greater than every key with this prefix:
    /// the standard "prefix successor" used to turn a prefix into a range.
    /// Returns `None` when the key is all `0xFF` (no successor exists).
    pub fn prefix_successor(&self) -> Option<RowKey> {
        let mut v = self.0.clone();
        while let Some(last) = v.last_mut() {
            if *last < 0xFF {
                *last += 1;
                return Some(RowKey(v));
            }
            v.pop();
        }
        None
    }
}

impl fmt::Debug for RowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.as_u64() {
            write!(f, "RowKey(u64:{v})")
        } else if let Some((p, s)) = self.split_composite() {
            write!(f, "RowKey({p}∥{s})")
        } else {
            write!(f, "RowKey({:02x?})", self.0)
        }
    }
}

impl From<u64> for RowKey {
    fn from(v: u64) -> Self {
        RowKey::from_u64(v)
    }
}

impl From<&str> for RowKey {
    fn from(s: &str) -> Self {
        RowKey(s.as_bytes().to_vec())
    }
}

/// Microseconds since the start of the simulation. Every stored cell is
/// timestamped (§3.1.2: "Each location record is timestamped").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Simulation epoch.
    pub const ZERO: Timestamp = Timestamp(0);

    /// From whole seconds.
    pub fn from_secs(s: u64) -> Self {
        Timestamp(s * 1_000_000)
    }

    /// From floating-point seconds (sub-microsecond truncated).
    pub fn from_secs_f64(s: f64) -> Self {
        Timestamp((s.max(0.0) * 1e6) as u64)
    }

    /// As floating-point seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference in seconds (`self - earlier`).
    pub fn secs_since(&self, earlier: Timestamp) -> f64 {
        (self.0.saturating_sub(earlier.0)) as f64 / 1e6
    }

    /// Timestamp advanced by `s` seconds.
    pub fn plus_secs(&self, s: f64) -> Timestamp {
        Timestamp(self.0 + (s.max(0.0) * 1e6) as u64)
    }
}

/// One timestamped value of a column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// When the value was written.
    pub ts: Timestamp,
    /// The stored bytes.
    #[serde(with = "serde_bytes_compat")]
    pub value: Bytes,
}

impl Cell {
    /// Creates a cell.
    pub fn new(ts: Timestamp, value: impl Into<Bytes>) -> Self {
        Cell {
            ts,
            value: value.into(),
        }
    }
}

/// Where a column family's data lives — the paper's "in-memory column" vs
/// "disk column" distinction (§3.1, Figure 2/3). Reads from `Disk` families
/// are charged a much larger cost by the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Locality {
    /// Served from the tablet server's memory.
    InMemory,
    /// Served from SSTables on disk.
    Disk,
}

mod serde_bytes_compat {
    //! `Bytes` does not implement serde by default without a feature; route
    //! through `Vec<u8>` which is fine at config/record-dump volumes.
    use bytes::Bytes;
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(b: &Bytes, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bytes(b)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Bytes, D::Error> {
        let v = Vec::<u8>::deserialize(d)?;
        Ok(Bytes::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_keys_sort_numerically() {
        let keys: Vec<RowKey> = [1u64, 255, 256, 65535, 1 << 40]
            .iter()
            .map(|&v| RowKey::from_u64(v))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(keys[4].as_u64(), Some(1 << 40));
    }

    #[test]
    fn composite_keys_sort_prefix_major() {
        let a = RowKey::composite(5, u64::MAX);
        let b = RowKey::composite(6, 0);
        assert!(a < b);
        assert_eq!(a.split_composite(), Some((5, u64::MAX)));
    }

    #[test]
    fn prefix_successor_is_tight() {
        let k = RowKey::from_bytes(vec![1, 2, 3]);
        let succ = k.prefix_successor().unwrap();
        assert_eq!(succ.0, vec![1, 2, 4]);
        // Every key with the prefix sorts below the successor.
        let extended = RowKey::from_bytes(vec![1, 2, 3, 255, 255]);
        assert!(extended < succ);
        // Rolls over trailing 0xFF bytes.
        let k2 = RowKey::from_bytes(vec![7, 255, 255]);
        assert_eq!(k2.prefix_successor().unwrap().0, vec![8]);
        // All-0xFF has no successor.
        assert!(RowKey::from_bytes(vec![255, 255])
            .prefix_successor()
            .is_none());
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_secs(10);
        assert_eq!(t.plus_secs(2.5), Timestamp(12_500_000));
        assert_eq!(t.plus_secs(2.5).secs_since(t), 2.5);
        assert_eq!(Timestamp::ZERO.secs_since(t), 0.0); // saturating
        assert!((Timestamp::from_secs_f64(1.25).as_secs_f64() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn as_u64_rejects_wrong_length() {
        assert_eq!(RowKey::from_bytes(vec![1, 2]).as_u64(), None);
        assert_eq!(RowKey::composite(1, 2).as_u64(), None);
        assert_eq!(RowKey::from_u64(9).split_composite(), None);
    }
}
