//! Table API: reads, atomic row mutations, batch mutations and range scans.

use crate::error::{BigtableError, Result};
use crate::metrics::Metrics;
use crate::schema::TableSchema;
use crate::tablet::{RowStorage, TabletSet};
use crate::types::{Cell, Locality, RowKey, Timestamp};
use crate::wal::{self, WalRecord, WalWriter};
use bytes::Bytes;
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::Arc;

/// A single change to one row. Mutations within a [`RowMutation`] apply
/// atomically (BigTable guarantees single-row atomicity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Writes one timestamped cell.
    Put {
        /// Column family name.
        family: String,
        /// Column qualifier.
        qualifier: String,
        /// Cell timestamp.
        ts: Timestamp,
        /// Cell value.
        value: Bytes,
    },
    /// Deletes all versions of one column.
    DeleteColumn {
        /// Column family name.
        family: String,
        /// Column qualifier.
        qualifier: String,
    },
    /// Deletes all columns of one family in the row.
    DeleteFamily {
        /// Column family name.
        family: String,
    },
    /// Deletes the entire row.
    DeleteRow,
}

impl Mutation {
    /// Convenience constructor for a put.
    pub fn put(
        family: impl Into<String>,
        qualifier: impl Into<String>,
        ts: Timestamp,
        value: impl Into<Bytes>,
    ) -> Self {
        Mutation::Put {
            family: family.into(),
            qualifier: qualifier.into(),
            ts,
            value: value.into(),
        }
    }

    /// Convenience constructor for a column delete.
    pub fn delete_column(family: impl Into<String>, qualifier: impl Into<String>) -> Self {
        Mutation::DeleteColumn {
            family: family.into(),
            qualifier: qualifier.into(),
        }
    }
}

/// A keyed batch of mutations for one row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMutation {
    /// Target row.
    pub key: RowKey,
    /// Mutations applied atomically to the row.
    pub mutations: Vec<Mutation>,
}

impl RowMutation {
    /// Creates a row mutation.
    pub fn new(key: impl Into<RowKey>, mutations: Vec<Mutation>) -> Self {
        RowMutation {
            key: key.into(),
            mutations,
        }
    }
}

/// One column of a returned row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowEntry {
    /// Family the column belongs to.
    pub family: String,
    /// Column qualifier.
    pub qualifier: String,
    /// Versions, newest first (only the head when `latest_only`).
    pub cells: Vec<Cell>,
}

/// A materialised row returned by reads and scans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedRow {
    /// The row's key.
    pub key: RowKey,
    /// The row's columns in family-then-qualifier order.
    pub entries: Vec<RowEntry>,
}

impl OwnedRow {
    /// Latest cell of `family:qualifier`, if present.
    pub fn latest(&self, family: &str, qualifier: &str) -> Option<&Cell> {
        self.entries
            .iter()
            .find(|e| e.family == family && e.qualifier == qualifier)
            .and_then(|e| e.cells.first())
    }

    /// All entries of one family.
    pub fn family<'a>(&'a self, family: &'a str) -> impl Iterator<Item = &'a RowEntry> + 'a {
        self.entries.iter().filter(move |e| e.family == family)
    }

    /// Total byte size of returned cell payloads (for cost accounting).
    pub fn payload_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.cells.iter().map(|c| c.value.len()).sum::<usize>())
            .sum()
    }
}

/// Read shaping: which families, and whether to return only latest versions.
#[derive(Debug, Clone, Default)]
pub struct ReadOptions {
    /// Restrict to these families (`None` = all).
    pub families: Option<Vec<String>>,
    /// Return only the newest version of each column.
    pub latest_only: bool,
}

impl ReadOptions {
    /// Latest version of every column in every family.
    pub fn latest() -> Self {
        ReadOptions {
            families: None,
            latest_only: true,
        }
    }

    /// Latest version of every column within one family.
    pub fn latest_in(family: impl Into<String>) -> Self {
        ReadOptions {
            families: Some(vec![family.into()]),
            latest_only: true,
        }
    }
}

/// Key range for scans: `[start, end)`; `end = None` scans to the table end.
#[derive(Debug, Clone)]
pub struct ScanRange {
    /// First key, inclusive.
    pub start: RowKey,
    /// One-past-last key, exclusive.
    pub end: Option<RowKey>,
}

impl ScanRange {
    /// The whole table.
    pub fn all() -> Self {
        ScanRange {
            start: RowKey::MIN,
            end: None,
        }
    }

    /// `[start, end)`.
    pub fn between(start: impl Into<RowKey>, end: impl Into<RowKey>) -> Self {
        ScanRange {
            start: start.into(),
            end: Some(end.into()),
        }
    }

    /// All keys starting with `prefix`.
    pub fn prefix(prefix: RowKey) -> Self {
        let end = prefix.prefix_successor();
        ScanRange { start: prefix, end }
    }
}

/// A table: schema + tablets + metrics.
///
/// All methods take `&self`; interior synchronisation is per tablet, which is
/// what lets multiple MOIST front-end servers share one store (§4.3.3).
pub struct Table {
    schema: TableSchema,
    tablets: TabletSet,
    metrics: Arc<Metrics>,
    /// Fast row-count estimate for the cost model (exact under the row
    /// locks, read relaxed).
    approx_rows: std::sync::atomic::AtomicU64,
    /// Commit log for durable tables; `None` under `Durability::None`.
    /// Writers append here *before* touching the tablet and keep the lock
    /// through the in-memory apply, so a snapshot taken under this lock
    /// always covers everything the truncated log contained.
    wal: Option<Mutex<WalWriter>>,
    /// Cached fsync cadence so the cost path never takes the WAL lock.
    wal_fsync_every: Option<u64>,
}

impl Table {
    pub(crate) fn new(
        schema: TableSchema,
        max_rows_per_tablet: usize,
        wal: Option<WalWriter>,
    ) -> Self {
        Table {
            schema,
            tablets: TabletSet::new(max_rows_per_tablet),
            metrics: Arc::new(Metrics::default()),
            approx_rows: std::sync::atomic::AtomicU64::new(0),
            wal_fsync_every: wal.as_ref().map(|w| w.fsync_every()),
            wal: wal.map(Mutex::new),
        }
    }

    /// Attaches the log writer after recovery replay (replay must not
    /// re-append the records it is applying).
    pub(crate) fn attach_wal(&mut self, writer: WalWriter) {
        self.wal_fsync_every = Some(writer.fsync_every());
        self.wal = Some(Mutex::new(writer));
    }

    /// `Some(fsync_every)` when this table writes a WAL, `None` when the
    /// store is purely in-memory. Sessions use this to charge the
    /// durability surcharge.
    pub fn wal_fsync_every(&self) -> Option<u64> {
        self.wal_fsync_every
    }

    /// Appends one framed record and returns the held lock so the caller's
    /// in-memory apply stays inside the WAL critical section.
    fn wal_append_with(
        &self,
        payload: impl FnOnce() -> Vec<u8>,
    ) -> Result<Option<MutexGuard<'_, WalWriter>>> {
        match &self.wal {
            None => Ok(None),
            Some(wal) => {
                let mut w = wal.lock();
                let info = w.append(&payload())?;
                self.metrics.record_wal_append(info.bytes, info.fsynced);
                Ok(Some(w))
            }
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The table's metrics counters.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Number of tablets currently serving this table.
    pub fn tablet_count(&self) -> usize {
        self.tablets.tablet_count()
    }

    /// Number of rows (exact, recounted from the tablets).
    pub fn row_count(&self) -> usize {
        self.tablets.row_count()
    }

    /// Total stored cell versions across all rows (walks the tablets; for
    /// capacity statistics, not hot paths).
    pub fn cell_count(&self) -> usize {
        let mut total = 0;
        for tablet in self.tablets.route_range(&RowKey::MIN, None) {
            let rows = tablet.rows.read();
            total += rows.values().map(|r| r.cell_count()).sum::<usize>();
        }
        total
    }

    /// Cheap row-count estimate for cost accounting (atomic read; may lag a
    /// concurrent writer by a few rows).
    pub fn approx_row_count(&self) -> u64 {
        self.approx_rows.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn note_row_delta(&self, delta: i64) {
        use std::sync::atomic::Ordering;
        match delta.cmp(&0) {
            std::cmp::Ordering::Greater => {
                self.approx_rows.fetch_add(delta as u64, Ordering::Relaxed);
            }
            std::cmp::Ordering::Less => {
                // Saturate at zero: fetch_update keeps the counter sane even
                // if deletes race ahead of the estimate.
                let dec = (-delta) as u64;
                let _ = self
                    .approx_rows
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                        Some(v.saturating_sub(dec))
                    });
            }
            std::cmp::Ordering::Equal => {}
        }
    }

    fn family_checked(&self, family: &str) -> Result<usize> {
        self.schema.family(family).map(|(i, _)| i)
    }

    /// Reads one row. Returns `None` when the row does not exist or stores
    /// nothing in the requested families.
    pub fn get_row(&self, key: &RowKey, opts: &ReadOptions) -> Result<Option<OwnedRow>> {
        let family_filter = self.resolve_family_filter(opts)?;
        let tablet = self.tablets.route(key);
        let rows = tablet.rows.read();
        let row = match rows.get(key) {
            Some(r) => r,
            None => {
                self.metrics.record_read(1, 0, 0);
                return Ok(None);
            }
        };
        let owned = self.materialize(key, row, &family_filter, opts.latest_only);
        self.metrics
            .record_read(1, 1, owned.as_ref().map_or(0, |r| r.payload_bytes() as u64));
        Ok(owned)
    }

    /// Latest cell of `family:qualifier` in `key`'s row.
    pub fn get_latest(&self, key: &RowKey, family: &str, qualifier: &str) -> Result<Option<Cell>> {
        let fidx = self.family_checked(family)?;
        let tablet = self.tablets.route(key);
        let rows = tablet.rows.read();
        let cell = rows
            .get(key)
            .and_then(|r| r.families[fidx].get(qualifier))
            .and_then(|versions| versions.first())
            .cloned();
        self.metrics.record_read(
            1,
            u64::from(cell.is_some()),
            cell.as_ref().map_or(0, |c| c.value.len() as u64),
        );
        Ok(cell)
    }

    /// Applies mutations to one row atomically.
    pub fn mutate_row(&self, key: &RowKey, mutations: &[Mutation]) -> Result<()> {
        // Validate families before taking the lock so errors are side-effect
        // free.
        self.validate_mutations(mutations)?;
        let _wal = self.wal_append_with(|| wal::encode_rows(&[(key, mutations)]))?;
        let tablet = self.tablets.route(key);
        let delta = {
            let mut rows = tablet.rows.write();
            self.apply_to_row(&mut rows, key, mutations)
        };
        self.note_row_delta(delta);
        self.metrics
            .record_write(1, mutations.len() as u64, Self::mutation_bytes(mutations));
        self.tablets.maybe_split();
        Ok(())
    }

    /// Applies a batch of row mutations. Atomic per row, not across rows
    /// (exactly BigTable's contract). Returns the number of rows touched.
    ///
    /// Rows are grouped by tablet so the batch takes each tablet's write
    /// lock once — this is the "batch reading/writing" advantage §3.3.2's
    /// clustering leans on.
    pub fn mutate_rows(&self, batch: &[RowMutation]) -> Result<usize> {
        for rm in batch {
            self.validate_mutations(&rm.mutations)?;
        }
        let _wal = self.wal_append_with(|| {
            let rows: Vec<(&RowKey, &[Mutation])> = batch
                .iter()
                .map(|rm| (&rm.key, rm.mutations.as_slice()))
                .collect();
            wal::encode_rows(&rows)
        })?;
        let (total_muts, total_bytes) = self.apply_batch(batch);
        self.metrics
            .record_batch_write(batch.len() as u64, total_muts, total_bytes);
        self.tablets.maybe_split();
        Ok(batch.len())
    }

    /// Groups a validated batch by tablet, applies it (one write lock per
    /// tablet group), and returns `(mutations, payload bytes)`. Shared by
    /// the live path and WAL replay.
    fn apply_batch(&self, batch: &[RowMutation]) -> (u64, u64) {
        let mut groups: HashMap<usize, (Arc<crate::tablet::Tablet>, Vec<&RowMutation>)> =
            HashMap::new();
        for rm in batch {
            let tablet = self.tablets.route(&rm.key);
            let id = Arc::as_ptr(&tablet) as usize;
            groups
                .entry(id)
                .or_insert_with(|| (tablet, Vec::new()))
                .1
                .push(rm);
        }
        let mut total_muts = 0u64;
        let mut total_bytes = 0u64;
        let mut total_delta = 0i64;
        for (_, (tablet, rms)) in groups {
            let mut rows = tablet.rows.write();
            for rm in rms {
                total_delta += self.apply_to_row(&mut rows, &rm.key, &rm.mutations);
                total_muts += rm.mutations.len() as u64;
                total_bytes += Self::mutation_bytes(&rm.mutations);
            }
        }
        self.note_row_delta(total_delta);
        (total_muts, total_bytes)
    }

    /// Conditional mutation (BigTable's `CheckAndMutate`): atomically checks
    /// the latest value of `family:qualifier` in `key`'s row against
    /// `expected` and applies `mutations` only on a match. `expected = None`
    /// matches "column absent". Returns whether the mutations were applied.
    ///
    /// The check and the mutations run under one tablet write lock, so
    /// concurrent writers cannot interleave between them — this is what
    /// lets multiple front-end servers arbitrate (e.g. leadership claims)
    /// without an external lock service.
    pub fn check_and_mutate(
        &self,
        key: &RowKey,
        family: &str,
        qualifier: &str,
        expected: Option<&[u8]>,
        mutations: &[Mutation],
    ) -> Result<bool> {
        let fidx = self.family_checked(family)?;
        self.validate_mutations(mutations)?;
        // WAL lock before tablet lock (the store-wide ordering): whether to
        // log is only known once the guard is evaluated under the row lock,
        // so the record is appended there — still before the apply.
        let mut wal_guard = self.wal.as_ref().map(|m| m.lock());
        let tablet = self.tablets.route(key);
        let (applied, delta) = {
            let mut rows = tablet.rows.write();
            let current: Option<Bytes> = rows
                .get(key)
                .and_then(|r| r.families[fidx].get(qualifier))
                .and_then(|versions| versions.first())
                .map(|c| c.value.clone());
            let matches = match (expected, &current) {
                (None, None) => true,
                (Some(e), Some(c)) => e == c.as_ref(),
                _ => false,
            };
            if matches {
                if let Some(w) = wal_guard.as_deref_mut() {
                    let info = w.append(&wal::encode_rows(&[(key, mutations)]))?;
                    self.metrics.record_wal_append(info.bytes, info.fsynced);
                }
                let delta = self.apply_to_row(&mut rows, key, mutations);
                (true, delta)
            } else {
                (false, 0)
            }
        };
        self.note_row_delta(delta);
        self.metrics.record_read(1, u64::from(applied), 0);
        if applied {
            self.metrics
                .record_write(1, mutations.len() as u64, Self::mutation_bytes(mutations));
            self.tablets.maybe_split();
        }
        Ok(applied)
    }

    /// Reads many rows in one batch RPC (BigTable's multi-get). Missing rows
    /// yield `None` at the matching position.
    pub fn batch_get(&self, keys: &[RowKey], opts: &ReadOptions) -> Result<Vec<Option<OwnedRow>>> {
        let family_filter = self.resolve_family_filter(opts)?;
        let mut out = Vec::with_capacity(keys.len());
        let mut rows_found = 0u64;
        let mut bytes = 0u64;
        for key in keys {
            let tablet = self.tablets.route(key);
            let rows = tablet.rows.read();
            let owned = rows
                .get(key)
                .and_then(|r| self.materialize(key, r, &family_filter, opts.latest_only));
            if let Some(r) = &owned {
                rows_found += 1;
                bytes += r.payload_bytes() as u64;
            }
            out.push(owned);
        }
        self.metrics.record_read(1, rows_found, bytes);
        Ok(out)
    }

    /// Scans rows in `[range.start, range.end)` in key order, up to `limit`.
    pub fn scan(
        &self,
        range: &ScanRange,
        opts: &ReadOptions,
        limit: Option<usize>,
    ) -> Result<Vec<OwnedRow>> {
        if let Some(end) = &range.end {
            if *end < range.start {
                return Err(BigtableError::InvalidRange);
            }
        }
        let family_filter = self.resolve_family_filter(opts)?;
        let limit = limit.unwrap_or(usize::MAX);
        let mut out = Vec::new();
        let tablets = self.tablets.route_range(&range.start, range.end.as_ref());
        let mut bytes = 0u64;
        'outer: for tablet in tablets {
            let rows = tablet.rows.read();
            let iter: Box<dyn Iterator<Item = (&RowKey, &RowStorage)>> = match &range.end {
                Some(end) => Box::new(rows.range(range.start.clone()..end.clone())),
                None => Box::new(rows.range(range.start.clone()..)),
            };
            for (key, row) in iter {
                if let Some(owned) = self.materialize(key, row, &family_filter, opts.latest_only) {
                    bytes += owned.payload_bytes() as u64;
                    out.push(owned);
                    if out.len() >= limit {
                        break 'outer;
                    }
                }
            }
        }
        self.metrics.record_scan(1, out.len() as u64, bytes);
        Ok(out)
    }

    /// Moves versions older than `cutoff` from an in-memory family to a disk
    /// family across the whole table — the paper's aged-record transfer
    /// ("after a period of time, aged L/F records will be transferred to
    /// disk columns", §3.1.1). Returns the number of cells moved.
    pub fn age_transfer(
        &self,
        mem_family: &str,
        disk_family: &str,
        cutoff: Timestamp,
    ) -> Result<usize> {
        let (mem_idx, mem_f) = self.schema.family(mem_family)?;
        let (disk_idx, disk_f) = self.schema.family(disk_family)?;
        if mem_f.locality != Locality::InMemory || disk_f.locality != Locality::Disk {
            return Err(BigtableError::InvalidSchema(format!(
                "age_transfer wants mem->disk, got {:?}->{:?}",
                mem_f.locality, disk_f.locality
            )));
        }
        let disk_max = disk_f.max_versions;
        let _wal =
            self.wal_append_with(|| wal::encode_age_transfer(mem_family, disk_family, cutoff))?;
        let moved = self.age_transfer_apply(mem_idx, disk_idx, disk_max, cutoff);
        self.metrics.record_write(0, moved as u64, 0);
        Ok(moved)
    }

    /// The tablet walk behind [`age_transfer`](Table::age_transfer),
    /// shared with WAL replay (the move is deterministic given the rows,
    /// so it replays by re-execution).
    fn age_transfer_apply(
        &self,
        mem_idx: usize,
        disk_idx: usize,
        disk_max: usize,
        cutoff: Timestamp,
    ) -> usize {
        let mut moved = 0usize;
        for tablet in self.tablets.route_range(&RowKey::MIN, None) {
            let mut rows = tablet.rows.write();
            for row in rows.values_mut() {
                // Collect first to avoid borrowing families twice.
                let mut staged: Vec<(String, Cell)> = Vec::new();
                for (qual, versions) in row.families[mem_idx].iter_mut() {
                    let split = versions.partition_point(|c| c.ts > cutoff);
                    for cell in versions.drain(split..) {
                        staged.push((qual.clone(), cell));
                    }
                }
                row.families[mem_idx].retain(|_, v| !v.is_empty());
                moved += staged.len();
                for (qual, cell) in staged {
                    row.put(disk_idx, &qual, cell.ts, cell.value, disk_max);
                }
            }
        }
        moved
    }

    /// Snapshots the table and truncates its log, all under the WAL lock
    /// so no record can land between the two. The snapshot goes to
    /// `<name>.snap.tmp` first and is renamed into place, so a crash
    /// mid-compaction leaves either the old snapshot + full log or the
    /// new snapshot (+ a log replay converges on). Returns snapshot bytes
    /// written; `Ok(0)` and no I/O on a non-durable table.
    pub fn compact(&self) -> Result<u64> {
        let Some(wal) = &self.wal else {
            return Ok(0);
        };
        let mut w = wal.lock();
        let payload = self.snapshot_payload();
        let bytes = w.write_snapshot(&payload)?;
        w.truncate()?;
        Ok(bytes)
    }

    /// Serializes schema + every row into one snapshot payload. Callers
    /// hold the WAL lock, which excludes all durable writers, so the scan
    /// over tablet read locks sees a consistent cut.
    pub(crate) fn snapshot_payload(&self) -> Vec<u8> {
        let mut buf = wal::encode_schema(&self.schema);
        let count_pos = buf.len();
        wal::put_u64(&mut buf, 0); // patched below
        let mut n = 0u64;
        for tablet in self.tablets.route_range(&RowKey::MIN, None) {
            let rows = tablet.rows.read();
            for (key, row) in rows.iter() {
                n += 1;
                wal::put_bytes(&mut buf, &key.0);
                for fam in &row.families {
                    wal::put_u32(&mut buf, fam.len() as u32);
                    for (qual, versions) in fam {
                        wal::put_str(&mut buf, qual);
                        wal::put_u32(&mut buf, versions.len() as u32);
                        for c in versions {
                            wal::put_u64(&mut buf, c.ts.0);
                            wal::put_bytes(&mut buf, &c.value);
                        }
                    }
                }
            }
        }
        buf[count_pos..count_pos + 8].copy_from_slice(&n.to_le_bytes());
        buf
    }

    /// Loads the row section of a snapshot payload (the reader is
    /// positioned just past the schema). Recovery-only: the table is not
    /// yet shared, so direct tablet inserts are safe.
    pub(crate) fn load_snapshot_rows(&self, r: &mut wal::Reader<'_>) -> Result<u64> {
        let nrows = r.u64()?;
        let nfam = self.schema.families.len();
        for i in 0..nrows {
            let key = RowKey(r.bytes()?.to_vec());
            let mut row = RowStorage::with_families(nfam);
            for (fidx, fam) in self.schema.families.iter().enumerate() {
                let ncols = r.u32()?;
                for _ in 0..ncols {
                    let qual = r.str()?;
                    let nver = r.u32()?;
                    for _ in 0..nver {
                        let ts = Timestamp(r.u64()?);
                        let value = Bytes::copy_from_slice(r.bytes()?);
                        row.put(fidx, &qual, ts, value, fam.max_versions);
                    }
                }
            }
            let tablet = self.tablets.route(&key);
            tablet.rows.write().insert(key, row);
            self.note_row_delta(1);
            if i % 1024 == 1023 {
                self.tablets.maybe_split();
            }
        }
        self.tablets.maybe_split();
        Ok(nrows)
    }

    /// Applies one replayed WAL record. Recovery-only: called before the
    /// log writer is attached, so nothing is re-appended; counts into the
    /// `wal_replayed` metric instead of the RPC counters.
    pub(crate) fn apply_replayed(&self, rec: WalRecord) -> Result<()> {
        match rec {
            WalRecord::Schema(s) => {
                // Harmless duplicate when a crash landed between snapshot
                // publication and log truncation; anything else is skew.
                if s != self.schema {
                    return Err(BigtableError::Wal(format!(
                        "replayed schema for table {:?} does not match",
                        self.schema.name
                    )));
                }
            }
            WalRecord::Rows(batch) => {
                for rm in &batch {
                    self.validate_mutations(&rm.mutations)?;
                }
                self.apply_batch(&batch);
                self.tablets.maybe_split();
            }
            WalRecord::AgeTransfer {
                mem_family,
                disk_family,
                cutoff,
            } => {
                let (mem_idx, _) = self.schema.family(&mem_family)?;
                let (disk_idx, disk_f) = self.schema.family(&disk_family)?;
                self.age_transfer_apply(mem_idx, disk_idx, disk_f.max_versions, cutoff);
            }
        }
        self.metrics.record_wal_replay(1);
        Ok(())
    }

    fn resolve_family_filter(&self, opts: &ReadOptions) -> Result<Option<Vec<usize>>> {
        match &opts.families {
            None => Ok(None),
            Some(names) => {
                let mut idxs = Vec::with_capacity(names.len());
                for n in names {
                    idxs.push(self.family_checked(n)?);
                }
                Ok(Some(idxs))
            }
        }
    }

    fn validate_mutations(&self, mutations: &[Mutation]) -> Result<()> {
        for m in mutations {
            match m {
                Mutation::Put { family, .. }
                | Mutation::DeleteColumn { family, .. }
                | Mutation::DeleteFamily { family } => {
                    self.family_checked(family)?;
                }
                Mutation::DeleteRow => {}
            }
        }
        Ok(())
    }

    /// Applies mutations under the tablet lock; returns the net change in
    /// row count (+1 created, −1 removed, 0 otherwise).
    fn apply_to_row(
        &self,
        rows: &mut std::collections::BTreeMap<RowKey, RowStorage>,
        key: &RowKey,
        mutations: &[Mutation],
    ) -> i64 {
        let nfam = self.schema.families.len();
        let existed = rows.contains_key(key);
        let row = rows
            .entry(key.clone())
            .or_insert_with(|| RowStorage::with_families(nfam));
        for m in mutations {
            match m {
                Mutation::Put {
                    family,
                    qualifier,
                    ts,
                    value,
                } => {
                    // Families were validated; index lookup cannot fail.
                    let (fidx, fam) = self.schema.family(family).expect("validated family");
                    row.put(fidx, qualifier, *ts, value.clone(), fam.max_versions);
                }
                Mutation::DeleteColumn { family, qualifier } => {
                    let (fidx, _) = self.schema.family(family).expect("validated family");
                    row.delete_column(fidx, qualifier);
                }
                Mutation::DeleteFamily { family } => {
                    let (fidx, _) = self.schema.family(family).expect("validated family");
                    row.delete_family(fidx);
                }
                Mutation::DeleteRow => {
                    for f in &mut row.families {
                        f.clear();
                    }
                }
            }
        }
        let empty_now = row.is_empty();
        if empty_now {
            rows.remove(key);
        }
        match (existed, empty_now) {
            (false, false) => 1,
            (true, true) => -1,
            _ => 0,
        }
    }

    fn materialize(
        &self,
        key: &RowKey,
        row: &RowStorage,
        family_filter: &Option<Vec<usize>>,
        latest_only: bool,
    ) -> Option<OwnedRow> {
        let mut entries = Vec::new();
        for (fidx, fam) in self.schema.families.iter().enumerate() {
            if let Some(filter) = family_filter {
                if !filter.contains(&fidx) {
                    continue;
                }
            }
            for (qual, versions) in &row.families[fidx] {
                if versions.is_empty() {
                    continue;
                }
                let cells = if latest_only {
                    vec![versions[0].clone()]
                } else {
                    versions.clone()
                };
                entries.push(RowEntry {
                    family: fam.name.clone(),
                    qualifier: qual.clone(),
                    cells,
                });
            }
        }
        if entries.is_empty() {
            None
        } else {
            Some(OwnedRow {
                key: key.clone(),
                entries,
            })
        }
    }

    fn mutation_bytes(mutations: &[Mutation]) -> u64 {
        mutations
            .iter()
            .map(|m| match m {
                Mutation::Put { value, .. } => value.len() as u64 + 16,
                _ => 16,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnFamily;

    fn table() -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnFamily::in_memory("mem", 4),
                ColumnFamily::on_disk("disk", usize::MAX),
            ],
        )
        .unwrap();
        Table::new(schema, 64, None)
    }

    #[test]
    fn put_get_roundtrip() {
        let t = table();
        let key = RowKey::from_u64(42);
        t.mutate_row(
            &key,
            &[Mutation::put("mem", "loc", Timestamp(5), &b"hello"[..])],
        )
        .unwrap();
        let cell = t.get_latest(&key, "mem", "loc").unwrap().unwrap();
        assert_eq!(&cell.value[..], b"hello");
        assert_eq!(cell.ts, Timestamp(5));
        assert!(t.get_latest(&key, "mem", "other").unwrap().is_none());
        assert!(t
            .get_latest(&RowKey::from_u64(43), "mem", "loc")
            .unwrap()
            .is_none());
    }

    #[test]
    fn unknown_family_is_an_error_not_a_panic() {
        let t = table();
        let key = RowKey::from_u64(1);
        let err = t
            .mutate_row(&key, &[Mutation::put("nope", "q", Timestamp(0), &b"x"[..])])
            .unwrap_err();
        assert!(matches!(err, BigtableError::UnknownFamily { .. }));
        assert!(t.get_latest(&key, "nope", "q").is_err());
        // Nothing was written.
        assert!(t.get_row(&key, &ReadOptions::latest()).unwrap().is_none());
    }

    #[test]
    fn row_mutations_are_atomic_and_delete_row_works() {
        let t = table();
        let key = RowKey::from_u64(7);
        t.mutate_row(
            &key,
            &[
                Mutation::put("mem", "a", Timestamp(1), &b"1"[..]),
                Mutation::put("mem", "b", Timestamp(1), &b"2"[..]),
            ],
        )
        .unwrap();
        let row = t.get_row(&key, &ReadOptions::latest()).unwrap().unwrap();
        assert_eq!(row.entries.len(), 2);
        t.mutate_row(&key, &[Mutation::DeleteRow]).unwrap();
        assert!(t.get_row(&key, &ReadOptions::latest()).unwrap().is_none());
        assert_eq!(t.row_count(), 0, "empty rows are physically removed");
    }

    #[test]
    fn latest_only_returns_one_version() {
        let t = table();
        let key = RowKey::from_u64(9);
        for ts in 1..=3u64 {
            t.mutate_row(
                &key,
                &[Mutation::put("mem", "q", Timestamp(ts), vec![ts as u8])],
            )
            .unwrap();
        }
        let all = t
            .get_row(
                &key,
                &ReadOptions {
                    families: None,
                    latest_only: false,
                },
            )
            .unwrap()
            .unwrap();
        assert_eq!(all.entries[0].cells.len(), 3);
        let latest = t.get_row(&key, &ReadOptions::latest()).unwrap().unwrap();
        assert_eq!(latest.entries[0].cells.len(), 1);
        assert_eq!(latest.entries[0].cells[0].ts, Timestamp(3));
    }

    #[test]
    fn scan_is_ordered_and_respects_range_and_limit() {
        let t = table();
        for i in (0..100u64).rev() {
            t.mutate_row(
                &RowKey::from_u64(i),
                &[Mutation::put("mem", "q", Timestamp(0), &b"v"[..])],
            )
            .unwrap();
        }
        let rows = t
            .scan(
                &ScanRange::between(RowKey::from_u64(10), RowKey::from_u64(20)),
                &ReadOptions::latest(),
                None,
            )
            .unwrap();
        let keys: Vec<u64> = rows.iter().map(|r| r.key.as_u64().unwrap()).collect();
        assert_eq!(keys, (10..20).collect::<Vec<_>>());
        let limited = t
            .scan(&ScanRange::all(), &ReadOptions::latest(), Some(5))
            .unwrap();
        assert_eq!(limited.len(), 5);
        assert_eq!(limited[0].key.as_u64(), Some(0));
    }

    #[test]
    fn scan_spans_tablet_splits() {
        let t = table(); // max 64 rows per tablet
        for i in 0..500u64 {
            t.mutate_row(
                &RowKey::from_u64(i),
                &[Mutation::put("mem", "q", Timestamp(0), &b"v"[..])],
            )
            .unwrap();
        }
        assert!(t.tablet_count() > 1);
        let rows = t
            .scan(&ScanRange::all(), &ReadOptions::latest(), None)
            .unwrap();
        assert_eq!(rows.len(), 500);
        let keys: Vec<u64> = rows.iter().map(|r| r.key.as_u64().unwrap()).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "scan out of order");
    }

    #[test]
    fn prefix_scan_composite_keys() {
        let t = table();
        for cell_idx in [5u64, 6, 7] {
            for oid in 0..4u64 {
                t.mutate_row(
                    &RowKey::composite(cell_idx, oid),
                    &[Mutation::put("mem", "id", Timestamp(0), &b"1"[..])],
                )
                .unwrap();
            }
        }
        let rows = t
            .scan(
                &ScanRange::prefix(RowKey::from_u64(6)),
                &ReadOptions::latest(),
                None,
            )
            .unwrap();
        assert_eq!(rows.len(), 4);
        for r in rows {
            assert_eq!(r.key.split_composite().unwrap().0, 6);
        }
    }

    #[test]
    fn invalid_range_rejected() {
        let t = table();
        let r = t.scan(
            &ScanRange::between(RowKey::from_u64(10), RowKey::from_u64(5)),
            &ReadOptions::latest(),
            None,
        );
        assert_eq!(r.unwrap_err(), BigtableError::InvalidRange);
    }

    #[test]
    fn batch_mutate_rows_touches_all_rows() {
        let t = table();
        let batch: Vec<RowMutation> = (0..200u64)
            .map(|i| {
                RowMutation::new(
                    RowKey::from_u64(i),
                    vec![Mutation::put("mem", "q", Timestamp(1), &b"b"[..])],
                )
            })
            .collect();
        assert_eq!(t.mutate_rows(&batch).unwrap(), 200);
        assert_eq!(t.row_count(), 200);
    }

    #[test]
    fn check_and_mutate_is_a_cas() {
        let t = table();
        let key = RowKey::from_u64(1);
        // Absent-column guard: first claim wins.
        let claimed = t
            .check_and_mutate(
                &key,
                "mem",
                "owner",
                None,
                &[Mutation::put("mem", "owner", Timestamp(1), &b"a"[..])],
            )
            .unwrap();
        assert!(claimed);
        // Second claim with the same guard loses.
        let claimed = t
            .check_and_mutate(
                &key,
                "mem",
                "owner",
                None,
                &[Mutation::put("mem", "owner", Timestamp(2), &b"b"[..])],
            )
            .unwrap();
        assert!(!claimed);
        assert_eq!(
            t.get_latest(&key, "mem", "owner")
                .unwrap()
                .unwrap()
                .value
                .as_ref(),
            b"a"
        );
        // Value-guarded transition a -> c succeeds; stale guard b -> d fails.
        assert!(t
            .check_and_mutate(
                &key,
                "mem",
                "owner",
                Some(b"a"),
                &[Mutation::put("mem", "owner", Timestamp(3), &b"c"[..])],
            )
            .unwrap());
        assert!(!t
            .check_and_mutate(
                &key,
                "mem",
                "owner",
                Some(b"b"),
                &[Mutation::put("mem", "owner", Timestamp(4), &b"d"[..])],
            )
            .unwrap());
        // Unknown family errors rather than silently failing.
        assert!(t.check_and_mutate(&key, "nope", "q", None, &[]).is_err());
    }

    #[test]
    fn check_and_mutate_is_atomic_under_contention() {
        let t = std::sync::Arc::new(table());
        let winners = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for i in 0..8u64 {
                let t = std::sync::Arc::clone(&t);
                let winners = &winners;
                scope.spawn(move || {
                    let ok = t
                        .check_and_mutate(
                            &RowKey::from_u64(42),
                            "mem",
                            "lock",
                            None,
                            &[Mutation::put("mem", "lock", Timestamp(i), vec![i as u8])],
                        )
                        .unwrap();
                    if ok {
                        winners.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(
            winners.load(std::sync::atomic::Ordering::Relaxed),
            1,
            "exactly one CAS may win"
        );
    }

    #[test]
    fn cell_count_tracks_versions() {
        let t = table();
        let key = RowKey::from_u64(1);
        for ts in 1..=3u64 {
            t.mutate_row(&key, &[Mutation::put("mem", "q", Timestamp(ts), vec![1u8])])
                .unwrap();
        }
        assert_eq!(t.cell_count(), 3); // mem family keeps 4 versions
        t.mutate_row(&key, &[Mutation::DeleteRow]).unwrap();
        assert_eq!(t.cell_count(), 0);
    }

    #[test]
    fn batch_get_preserves_positions_and_reports_misses() {
        let t = table();
        for i in [1u64, 3, 5] {
            t.mutate_row(
                &RowKey::from_u64(i),
                &[Mutation::put("mem", "q", Timestamp(0), vec![i as u8])],
            )
            .unwrap();
        }
        let keys: Vec<RowKey> = (0..6u64).map(RowKey::from_u64).collect();
        let rows = t.batch_get(&keys, &ReadOptions::latest()).unwrap();
        assert_eq!(rows.len(), 6);
        for (i, row) in rows.iter().enumerate() {
            if [1, 3, 5].contains(&(i as u64)) {
                let r = row.as_ref().expect("present");
                assert_eq!(r.key.as_u64(), Some(i as u64));
            } else {
                assert!(row.is_none());
            }
        }
        // One RPC regardless of key count.
        assert_eq!(t.metrics().snapshot().read_ops, 1);
    }

    #[test]
    fn age_transfer_moves_old_cells_to_disk_family() {
        let t = table();
        let key = RowKey::from_u64(1);
        for ts in [10u64, 20, 30] {
            t.mutate_row(
                &key,
                &[Mutation::put("mem", "loc", Timestamp(ts), vec![ts as u8])],
            )
            .unwrap();
        }
        let moved = t.age_transfer("mem", "disk", Timestamp(20)).unwrap();
        assert_eq!(moved, 2); // ts 10 and 20 moved; 30 stays hot
        let mem = t.get_latest(&key, "mem", "loc").unwrap().unwrap();
        assert_eq!(mem.ts, Timestamp(30));
        let row = t
            .get_row(
                &key,
                &ReadOptions {
                    families: Some(vec!["disk".into()]),
                    latest_only: false,
                },
            )
            .unwrap()
            .unwrap();
        assert_eq!(row.entries[0].cells.len(), 2);
        // Direction check: disk -> mem is rejected.
        assert!(t.age_transfer("disk", "mem", Timestamp(99)).is_err());
    }

    #[test]
    fn metrics_count_reads_and_writes() {
        let t = table();
        let key = RowKey::from_u64(3);
        t.mutate_row(
            &key,
            &[Mutation::put("mem", "q", Timestamp(0), &b"abc"[..])],
        )
        .unwrap();
        let _ = t.get_latest(&key, "mem", "q").unwrap();
        let snap = t.metrics().snapshot();
        assert_eq!(snap.write_ops, 1);
        assert_eq!(snap.read_ops, 1);
        assert!(snap.bytes_written >= 3);
    }
}
