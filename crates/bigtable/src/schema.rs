//! Table schemas: named column families with locality and version limits.

use crate::error::{BigtableError, Result};
use crate::types::Locality;
use serde::{Deserialize, Serialize};

/// Declaration of one column family.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnFamily {
    /// Family name, unique within the table.
    pub name: String,
    /// Memory or disk locality (drives the read cost model).
    pub locality: Locality,
    /// Maximum stored versions per column; older versions are garbage
    /// collected on write. `usize::MAX` keeps everything (the Location
    /// Table's history columns want this until archiving trims them).
    pub max_versions: usize,
}

impl ColumnFamily {
    /// An in-memory family keeping `max_versions` versions.
    pub fn in_memory(name: impl Into<String>, max_versions: usize) -> Self {
        ColumnFamily {
            name: name.into(),
            locality: Locality::InMemory,
            max_versions: max_versions.max(1),
        }
    }

    /// A disk family keeping `max_versions` versions.
    pub fn on_disk(name: impl Into<String>, max_versions: usize) -> Self {
        ColumnFamily {
            name: name.into(),
            locality: Locality::Disk,
            max_versions: max_versions.max(1),
        }
    }
}

/// Schema of a table: its name plus its column families.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table name, unique within the store.
    pub name: String,
    /// Declared column families.
    pub families: Vec<ColumnFamily>,
}

impl TableSchema {
    /// Creates and validates a schema.
    pub fn new(name: impl Into<String>, families: Vec<ColumnFamily>) -> Result<Self> {
        let name = name.into();
        if families.is_empty() {
            return Err(BigtableError::InvalidSchema(format!(
                "table {name:?} has no column families"
            )));
        }
        for (i, f) in families.iter().enumerate() {
            if f.name.is_empty() {
                return Err(BigtableError::InvalidSchema(format!(
                    "table {name:?} has an unnamed family"
                )));
            }
            if families[..i].iter().any(|g| g.name == f.name) {
                return Err(BigtableError::InvalidSchema(format!(
                    "table {name:?} declares family {:?} twice",
                    f.name
                )));
            }
        }
        Ok(TableSchema { name, families })
    }

    /// Index of a family by name.
    pub fn family_index(&self, family: &str) -> Option<usize> {
        self.families.iter().position(|f| f.name == family)
    }

    /// Family declaration by name, as an error-carrying lookup.
    pub fn family(&self, family: &str) -> Result<(usize, &ColumnFamily)> {
        self.family_index(family)
            .map(|i| (i, &self.families[i]))
            .ok_or_else(|| BigtableError::UnknownFamily {
                table: self.name.clone(),
                family: family.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_validation() {
        assert!(TableSchema::new("t", vec![]).is_err());
        let dup = TableSchema::new(
            "t",
            vec![
                ColumnFamily::in_memory("a", 1),
                ColumnFamily::in_memory("a", 2),
            ],
        );
        assert!(dup.is_err());
        let unnamed = TableSchema::new("t", vec![ColumnFamily::in_memory("", 1)]);
        assert!(unnamed.is_err());
    }

    #[test]
    fn family_lookup() {
        let s = TableSchema::new(
            "t",
            vec![
                ColumnFamily::in_memory("mem", 3),
                ColumnFamily::on_disk("disk", usize::MAX),
            ],
        )
        .unwrap();
        assert_eq!(s.family_index("mem"), Some(0));
        let (i, f) = s.family("disk").unwrap();
        assert_eq!(i, 1);
        assert_eq!(f.locality, Locality::Disk);
        assert!(matches!(
            s.family("nope"),
            Err(BigtableError::UnknownFamily { .. })
        ));
    }

    #[test]
    fn max_versions_floor_is_one() {
        let f = ColumnFamily::in_memory("m", 0);
        assert_eq!(f.max_versions, 1);
    }
}
