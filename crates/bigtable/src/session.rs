//! Cost-charged sessions.
//!
//! A [`Session`] wraps store operations and charges their modelled cost to a
//! private [`SimClock`]. Each simulated front-end server or client owns one
//! session; virtual elapsed time divided into operation counts yields the
//! modelled QPS the benchmarks report.

use crate::cost::{CostMeter, CostProfile, MeterHub};
use crate::error::Result;
use crate::store::Bigtable;
use crate::table::{Mutation, OwnedRow, ReadOptions, RowMutation, ScanRange, Table};
use crate::types::{Cell, Locality, RowKey};
use std::sync::Arc;

/// A cost-charged view of a store.
///
/// A plain session charges a private [`CostMeter`]. A hub-attached
/// session (see [`Bigtable::session_with_hub`]) additionally mirrors
/// every charge into a shared [`MeterHub`] *and* seeds its private meter
/// from the hub's current totals, so:
///
/// * absolute `elapsed_us()` reads mid-call match what one shared clock
///   would have shown (single-threaded runs stay bit-identical), and
/// * concurrent calls each own a meter — no `&mut` clock contention —
///   while the hub accumulates the server-wide totals.
pub struct Session {
    store: Arc<Bigtable>,
    profile: CostProfile,
    meter: CostMeter,
    hub: Option<Arc<MeterHub>>,
}

impl Session {
    pub(crate) fn new(store: Arc<Bigtable>, profile: CostProfile) -> Self {
        Session {
            store,
            profile,
            meter: CostMeter::new(),
            hub: None,
        }
    }

    pub(crate) fn with_hub(store: Arc<Bigtable>, profile: CostProfile, hub: Arc<MeterHub>) -> Self {
        Session {
            store,
            profile,
            meter: CostMeter::starting_at(hub.elapsed_us(), hub.op_count()),
            hub: Some(hub),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<Bigtable> {
        &self.store
    }

    /// The session's cost profile.
    pub fn profile(&self) -> &CostProfile {
        &self.profile
    }

    /// The shared hub this session mirrors charges into, if any.
    pub fn hub(&self) -> Option<&Arc<MeterHub>> {
        self.hub.as_ref()
    }

    /// Virtual microseconds consumed so far (per-call meter view).
    pub fn elapsed_us(&self) -> f64 {
        self.meter.elapsed_us()
    }

    /// Virtual seconds consumed so far.
    pub fn elapsed_secs(&self) -> f64 {
        self.meter.elapsed_us() / 1e6
    }

    /// Operations issued so far.
    pub fn op_count(&self) -> u64 {
        self.meter.op_count()
    }

    /// Resets the clock and op counter, returning elapsed microseconds.
    ///
    /// On a hub-attached session this resets the shared hub too and
    /// returns the hub's (authoritative, server-wide) elapsed total.
    pub fn reset(&mut self) -> f64 {
        if let Some(hub) = &self.hub {
            let elapsed = hub.reset();
            self.meter.reset();
            elapsed
        } else {
            self.meter.reset()
        }
    }

    /// Charges `us` to the private meter and mirrors it into the hub.
    /// All cost accounting funnels through here so the hub sees the
    /// exact per-op addition sequence (not a coarse end-of-call fold).
    #[inline]
    fn charge(&mut self, us: f64) {
        self.meter.charge_us(us);
        if let Some(hub) = &self.hub {
            hub.charge_us(us);
        }
    }

    #[inline]
    fn note_op(&mut self) {
        self.meter.note_op();
        if let Some(hub) = &self.hub {
            hub.note_op();
        }
    }

    /// Adds non-store work (e.g. server CPU) to the virtual timeline.
    pub fn charge_extra_us(&mut self, us: f64) {
        self.charge(us);
    }

    /// Durability surcharge for one write RPC on `table` that logged
    /// roughly `bytes` of mutations (plus frame overhead). Zero on
    /// non-durable tables, so `Durability::None` stays bit-identical.
    fn charge_wal(&mut self, table: &Table, bytes: u64) {
        if let Some(every) = table.wal_fsync_every() {
            let us = self.profile.wal_write_us(bytes + 32, every);
            self.charge(us);
        }
    }

    fn family_touches_disk(table: &Table, opts: &ReadOptions) -> bool {
        match &opts.families {
            None => table
                .schema()
                .families
                .iter()
                .any(|f| f.locality == Locality::Disk),
            Some(names) => names.iter().any(|n| {
                table
                    .schema()
                    .family(n)
                    .map(|(_, f)| f.locality == Locality::Disk)
                    .unwrap_or(false)
            }),
        }
    }

    /// Charged [`Table::get_latest`].
    pub fn get_latest(
        &mut self,
        table: &Table,
        key: &RowKey,
        family: &str,
        qualifier: &str,
    ) -> Result<Option<Cell>> {
        let cell = table.get_latest(key, family, qualifier)?;
        let bytes = cell.as_ref().map_or(0, |c| c.value.len() as u64);
        let disk = table
            .schema()
            .family(family)
            .map(|(_, f)| f.locality == Locality::Disk)
            .unwrap_or(false);
        let us = self
            .profile
            .point_read_us(table.approx_row_count(), bytes, disk);
        self.charge(us);
        self.note_op();
        Ok(cell)
    }

    /// Charged [`Table::get_row`].
    pub fn get_row(
        &mut self,
        table: &Table,
        key: &RowKey,
        opts: &ReadOptions,
    ) -> Result<Option<OwnedRow>> {
        let row = table.get_row(key, opts)?;
        let bytes = row.as_ref().map_or(0, |r| r.payload_bytes() as u64);
        let disk = Self::family_touches_disk(table, opts);
        let us = self
            .profile
            .point_read_us(table.approx_row_count(), bytes, disk);
        self.charge(us);
        self.note_op();
        Ok(row)
    }

    /// Charged [`Table::batch_get`]: one RPC, per-row cost at scan (not
    /// point-read) rates — BigTable's multi-get amortisation.
    pub fn batch_get(
        &mut self,
        table: &Table,
        keys: &[RowKey],
        opts: &ReadOptions,
    ) -> Result<Vec<Option<OwnedRow>>> {
        let rows = table.batch_get(keys, opts)?;
        let bytes: u64 = rows
            .iter()
            .flatten()
            .map(|r| r.payload_bytes() as u64)
            .sum();
        let disk = Self::family_touches_disk(table, opts);
        let us = self
            .profile
            .scan_us(table.approx_row_count(), keys.len() as u64, bytes, disk);
        self.charge(us);
        self.note_op();
        Ok(rows)
    }

    /// Charged [`Table::mutate_row`].
    pub fn mutate_row(
        &mut self,
        table: &Table,
        key: &RowKey,
        mutations: &[Mutation],
    ) -> Result<()> {
        table.mutate_row(key, mutations)?;
        let bytes: u64 = mutations
            .iter()
            .map(|m| match m {
                Mutation::Put { value, .. } => value.len() as u64 + 16,
                _ => 16,
            })
            .sum();
        let us = self
            .profile
            .write_us(table.approx_row_count(), mutations.len() as u64, bytes);
        self.charge(us);
        self.charge_wal(table, bytes);
        self.note_op();
        Ok(())
    }

    /// Charged [`Table::mutate_rows`] (batch; the cheap path clustering uses).
    pub fn mutate_rows(&mut self, table: &Table, batch: &[RowMutation]) -> Result<usize> {
        let n = table.mutate_rows(batch)?;
        let muts: u64 = batch.iter().map(|rm| rm.mutations.len() as u64).sum();
        let bytes: u64 = batch
            .iter()
            .flat_map(|rm| rm.mutations.iter())
            .map(|m| match m {
                Mutation::Put { value, .. } => value.len() as u64 + 16,
                _ => 16,
            })
            .sum();
        let us = self.profile.batch_write_us(batch.len() as u64, muts, bytes);
        self.charge(us);
        self.charge_wal(table, bytes);
        self.note_op();
        Ok(n)
    }

    /// Charged [`Table::check_and_mutate`]: costs a point read plus, when
    /// the guard matches, the write.
    #[allow(clippy::too_many_arguments)]
    pub fn check_and_mutate(
        &mut self,
        table: &Table,
        key: &RowKey,
        family: &str,
        qualifier: &str,
        expected: Option<&[u8]>,
        mutations: &[Mutation],
    ) -> Result<bool> {
        let applied = table.check_and_mutate(key, family, qualifier, expected, mutations)?;
        let rows = table.approx_row_count();
        let mut us = self.profile.point_read_us(rows, 0, false);
        if applied {
            let bytes: u64 = mutations
                .iter()
                .map(|m| match m {
                    Mutation::Put { value, .. } => value.len() as u64 + 16,
                    _ => 16,
                })
                .sum();
            us += self.profile.write_us(rows, mutations.len() as u64, bytes);
            self.charge_wal(table, bytes);
        }
        self.charge(us);
        self.note_op();
        Ok(applied)
    }

    /// Charged [`Table::scan`].
    pub fn scan(
        &mut self,
        table: &Table,
        range: &ScanRange,
        opts: &ReadOptions,
        limit: Option<usize>,
    ) -> Result<Vec<OwnedRow>> {
        let rows = table.scan(range, opts, limit)?;
        let bytes: u64 = rows.iter().map(|r| r.payload_bytes() as u64).sum();
        let disk = Self::family_touches_disk(table, opts);
        let us = self
            .profile
            .scan_us(table.approx_row_count(), rows.len() as u64, bytes, disk);
        self.charge(us);
        self.note_op();
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnFamily, TableSchema};
    use crate::types::Timestamp;

    fn setup() -> (Arc<Bigtable>, Arc<Table>) {
        let store = Bigtable::new();
        let t = store
            .create_table(
                TableSchema::new(
                    "t",
                    vec![
                        ColumnFamily::in_memory("mem", 4),
                        ColumnFamily::on_disk("disk", 4),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        (store, t)
    }

    #[test]
    fn session_charges_time_per_op() {
        let (store, t) = setup();
        let mut s = store.session();
        assert_eq!(s.elapsed_us(), 0.0);
        s.mutate_row(
            &t,
            &RowKey::from_u64(1),
            &[Mutation::put("mem", "q", Timestamp(0), &b"hello"[..])],
        )
        .unwrap();
        let after_write = s.elapsed_us();
        assert!(after_write > 0.0);
        let cell = s.get_latest(&t, &RowKey::from_u64(1), "mem", "q").unwrap();
        assert!(cell.is_some());
        assert!(s.elapsed_us() > after_write);
        assert_eq!(s.op_count(), 2);
        let elapsed = s.reset();
        assert!(elapsed > 0.0);
        assert_eq!(s.op_count(), 0);
    }

    #[test]
    fn disk_family_reads_cost_more() {
        let (store, t) = setup();
        let mut s = store.session();
        let k = RowKey::from_u64(1);
        s.mutate_row(
            &t,
            &k,
            &[Mutation::put("mem", "q", Timestamp(0), &b"x"[..])],
        )
        .unwrap();
        s.mutate_row(
            &t,
            &k,
            &[Mutation::put("disk", "q", Timestamp(0), &b"x"[..])],
        )
        .unwrap();
        s.reset();
        let _ = s.get_latest(&t, &k, "mem", "q").unwrap();
        let mem_cost = s.reset();
        let _ = s.get_latest(&t, &k, "disk", "q").unwrap();
        let disk_cost = s.reset();
        assert!(disk_cost > 5.0 * mem_cost, "{disk_cost} vs {mem_cost}");
    }

    #[test]
    fn batch_cheaper_than_singles() {
        let (store, t) = setup();
        let mut s = store.session();
        let batch: Vec<RowMutation> = (0..100u64)
            .map(|i| {
                RowMutation::new(
                    RowKey::from_u64(i),
                    vec![Mutation::put("mem", "q", Timestamp(0), &b"v"[..])],
                )
            })
            .collect();
        s.mutate_rows(&t, &batch).unwrap();
        let batch_cost = s.reset();
        for i in 100..200u64 {
            s.mutate_row(
                &t,
                &RowKey::from_u64(i),
                &[Mutation::put("mem", "q", Timestamp(0), &b"v"[..])],
            )
            .unwrap();
        }
        let single_cost = s.reset();
        assert!(batch_cost < single_cost / 4.0);
    }

    #[test]
    fn free_profile_charges_nothing() {
        let (store, t) = setup();
        let mut s = store.session_with(CostProfile::free());
        s.mutate_row(
            &t,
            &RowKey::from_u64(1),
            &[Mutation::put("mem", "q", Timestamp(0), &b"v"[..])],
        )
        .unwrap();
        assert_eq!(s.elapsed_us(), 0.0);
        assert_eq!(s.op_count(), 1);
    }

    #[test]
    fn scan_charges_per_row() {
        let (store, t) = setup();
        let mut s = store.session();
        let batch: Vec<RowMutation> = (0..50u64)
            .map(|i| {
                RowMutation::new(
                    RowKey::from_u64(i),
                    vec![Mutation::put("mem", "q", Timestamp(0), &b"v"[..])],
                )
            })
            .collect();
        s.mutate_rows(&t, &batch).unwrap();
        s.reset();
        let small = s
            .scan(
                &t,
                &ScanRange::between(RowKey::from_u64(0), RowKey::from_u64(5)),
                &ReadOptions::latest_in("mem"),
                None,
            )
            .unwrap();
        let small_cost = s.reset();
        let big = s
            .scan(&t, &ScanRange::all(), &ReadOptions::latest_in("mem"), None)
            .unwrap();
        let big_cost = s.reset();
        assert_eq!(small.len(), 5);
        assert_eq!(big.len(), 50);
        assert!(big_cost > small_cost);
    }
}
