//! # moist-bigtable
//!
//! An in-process key-value store reproducing the BigTable semantics MOIST
//! (Jiang et al., VLDB 2012) is built on: lexicographically sorted row keys,
//! column families with in-memory vs on-disk locality, timestamped
//! multi-version cells, atomic single-row mutations, batch mutations and
//! contiguous range scans, with automatic tablet splitting.
//!
//! Because the paper's evaluation is entirely about *operation costs* ("the
//! number of read and write operations performed by the server on BigTable …
//! was the major bottleneck", §4.2), the crate pairs the store with a
//! calibrated virtual-time [`cost::CostProfile`]: every operation issued via
//! a [`session::Session`] charges modelled microseconds to a per-client
//! clock, giving deterministic, hardware-independent QPS measurements that
//! preserve the paper's cost asymmetries (batch ≫ point, memory ≫ disk,
//! reads cheaper than writes).
//!
//! ```
//! use moist_bigtable::{
//!     Bigtable, ColumnFamily, Mutation, RowKey, TableSchema, Timestamp,
//! };
//!
//! let store = Bigtable::new();
//! let table = store.create_table(TableSchema::new(
//!     "location",
//!     vec![ColumnFamily::in_memory("loc", 8)],
//! )?)?;
//! let mut session = store.session();
//! session.mutate_row(
//!     &table,
//!     &RowKey::from_u64(42),
//!     &[Mutation::put("loc", "latest", Timestamp::from_secs(1), &b"(3,4)"[..])],
//! )?;
//! let cell = session.get_latest(&table, &RowKey::from_u64(42), "loc", "latest")?;
//! assert_eq!(cell.unwrap().value.as_ref(), b"(3,4)");
//! assert!(session.elapsed_us() > 0.0); // virtual cost was charged
//! # Ok::<(), moist_bigtable::BigtableError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod error;
pub mod metrics;
pub mod schema;
pub mod session;
pub mod store;
pub mod table;
mod tablet;
pub mod types;
pub mod wal;

pub use cost::{CostMeter, CostProfile, MeterHub, SimClock};
pub use error::{BigtableError, Result};
pub use metrics::{Metrics, MetricsSnapshot};
pub use schema::{ColumnFamily, TableSchema};
pub use session::Session;
pub use store::{Bigtable, StoreConfig};
pub use table::{Mutation, OwnedRow, ReadOptions, RowEntry, RowMutation, ScanRange, Table};
pub use types::{Cell, Locality, RowKey, Timestamp};
pub use wal::{Durability, RecoveryReport};
