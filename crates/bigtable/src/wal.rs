//! Per-table write-ahead log: append-only, length-prefixed, CRC32-checksummed.
//!
//! Real BigTable acknowledged a mutation only after it was durable in the
//! tablet server's commit log; this module gives the in-process model the
//! same contract. Each durable [`Table`](crate::Table) owns one log file
//! (`<dir>/<name>.wal`) plus at most one snapshot (`<dir>/<name>.snap`).
//!
//! # Record format
//!
//! Every record is framed as
//!
//! ```text
//! [len: u32 LE] [crc32(seq ‖ payload): u32 LE] [seq: u64 LE] [payload: len bytes]
//! ```
//!
//! where `seq` is a per-table sequence number that increases by one per
//! append and never resets (compaction truncates the file but the writer
//! keeps counting). The CRC covers the sequence number and the payload.
//! Payloads carry one of three logical records, tagged by their first
//! byte:
//!
//! * `Schema` — the table schema, written once when the table is created
//!   (a WAL with no snapshot must start with one);
//! * `Rows` — a batch of [`RowMutation`]s: one record per `mutate_row`
//!   call, per `mutate_rows` batch, and per applied `check_and_mutate`;
//! * `AgeTransfer` — one logical record per `age_transfer` call (the move
//!   is deterministic given prior state, so it replays by re-execution).
//!
//! # Recovery
//!
//! [`Bigtable::recover`](crate::Bigtable::recover) loads the snapshot (if
//! any), then replays the log in order, stopping at the first frame whose
//! length or checksum does not hold — a torn final record from a crash
//! mid-append. The file is truncated to that consistent cut and appends
//! resume after it. The snapshot frame's own sequence number records the
//! last log record it covers, and replay skips covered frames, so a log
//! that still holds records the snapshot already contains (a crash
//! between snapshot publication and log truncation) replays exactly the
//! uncovered tail — never a record twice.
//!
//! # Compaction
//!
//! [`Table::compact`](crate::Table::compact) serializes the table into
//! `<name>.snap.tmp`, fsyncs, renames over `<name>.snap`, then truncates
//! the log — all under the WAL lock, so no record can slip between the
//! snapshot and the truncation. A crash between rename and truncate
//! leaves snapshot + full log; recovery skips the covered records by
//! sequence number and loses nothing.

use crate::error::{BigtableError, Result};
use crate::schema::{ColumnFamily, TableSchema};
use crate::table::{Mutation, RowMutation};
use crate::types::{Locality, RowKey, Timestamp};
use bytes::Bytes;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Durability mode for a store, chosen at construction via
/// [`StoreConfig`](crate::StoreConfig).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Durability {
    /// Purely in-memory (the default). Bit-identical behaviour and cost to
    /// every pre-durability build; nothing survives a crash.
    #[default]
    None,
    /// Every table appends mutations to a write-ahead log under `dir`
    /// before touching the in-memory tablet, and
    /// [`Bigtable::recover`](crate::Bigtable::recover) can rebuild the
    /// store from those files after a crash.
    Wal {
        /// Directory holding one `<table>.wal` (and, after compaction,
        /// one `<table>.snap`) per table. Created if missing.
        dir: PathBuf,
        /// `fsync` the log every N appended records; `0` never issues an
        /// explicit fsync (the OS page cache decides), `1` is synchronous
        /// commit. Group commit amortizes the fsync cost by this factor in
        /// the cost model too.
        fsync_every: u64,
    },
}

/// What [`Bigtable::recover`](crate::Bigtable::recover) did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Tables successfully recovered.
    pub tables: usize,
    /// WAL records replayed on top of snapshots across all tables.
    pub replayed_records: u64,
    /// Payload bytes replayed across all tables.
    pub replayed_bytes: u64,
    /// Tables whose log ended in a torn or corrupt final record that was
    /// truncated to the last consistent cut.
    pub truncated_tables: usize,
    /// On-disk table stubs skipped because they never finished creation
    /// (an empty log with no snapshot and no schema record).
    pub skipped_tables: usize,
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE, reflected) — table-driven, built at compile time so the
// crate needs no new dependency.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE 802.3) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Binary encoding helpers (little-endian, length-prefixed bytes/strings).
// ---------------------------------------------------------------------------

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn corrupt(what: &str) -> BigtableError {
        BigtableError::Wal(format!("decode: truncated or invalid {what}"))
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| Self::corrupt(what))?;
        if end > self.buf.len() {
            return Err(Self::corrupt(what));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        let s = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        let s = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    pub(crate) fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n, "bytes")
    }

    pub(crate) fn str(&mut self) -> Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| Self::corrupt("utf-8 string"))
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// Logical records.
// ---------------------------------------------------------------------------

const TAG_SCHEMA: u8 = 1;
const TAG_ROWS: u8 = 2;
const TAG_AGE_TRANSFER: u8 = 3;

/// A decoded WAL record, as seen by replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WalRecord {
    /// Table schema, first record of a fresh log.
    Schema(TableSchema),
    /// A batch of row mutations applied atomically per row.
    Rows(Vec<RowMutation>),
    /// A deterministic `age_transfer(mem, disk, cutoff)` call.
    AgeTransfer {
        mem_family: String,
        disk_family: String,
        cutoff: Timestamp,
    },
}

fn put_mutation(buf: &mut Vec<u8>, m: &Mutation) {
    match m {
        Mutation::Put {
            family,
            qualifier,
            ts,
            value,
        } => {
            buf.push(0);
            put_str(buf, family);
            put_str(buf, qualifier);
            put_u64(buf, ts.0);
            put_bytes(buf, value);
        }
        Mutation::DeleteColumn { family, qualifier } => {
            buf.push(1);
            put_str(buf, family);
            put_str(buf, qualifier);
        }
        Mutation::DeleteFamily { family } => {
            buf.push(2);
            put_str(buf, family);
        }
        Mutation::DeleteRow => buf.push(3),
    }
}

fn read_mutation(r: &mut Reader<'_>) -> Result<Mutation> {
    match r.u8()? {
        0 => Ok(Mutation::Put {
            family: r.str()?,
            qualifier: r.str()?,
            ts: Timestamp(r.u64()?),
            value: Bytes::copy_from_slice(r.bytes()?),
        }),
        1 => Ok(Mutation::DeleteColumn {
            family: r.str()?,
            qualifier: r.str()?,
        }),
        2 => Ok(Mutation::DeleteFamily { family: r.str()? }),
        3 => Ok(Mutation::DeleteRow),
        t => Err(BigtableError::Wal(format!("decode: bad mutation tag {t}"))),
    }
}

/// Encodes a `Rows` payload from borrowed keys and mutation slices, so the
/// hot write path never clones its mutations.
pub(crate) fn encode_rows(rows: &[(&RowKey, &[Mutation])]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.push(TAG_ROWS);
    put_u32(&mut buf, rows.len() as u32);
    for (key, muts) in rows {
        put_bytes(&mut buf, &key.0);
        put_u32(&mut buf, muts.len() as u32);
        for m in *muts {
            put_mutation(&mut buf, m);
        }
    }
    buf
}

/// Encodes a `Schema` payload.
pub(crate) fn encode_schema(schema: &TableSchema) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.push(TAG_SCHEMA);
    put_str(&mut buf, &schema.name);
    put_u32(&mut buf, schema.families.len() as u32);
    for f in &schema.families {
        put_str(&mut buf, &f.name);
        buf.push(match f.locality {
            Locality::InMemory => 0,
            Locality::Disk => 1,
        });
        put_u64(&mut buf, f.max_versions as u64);
    }
    buf
}

/// Encodes an `AgeTransfer` payload.
pub(crate) fn encode_age_transfer(mem: &str, disk: &str, cutoff: Timestamp) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    buf.push(TAG_AGE_TRANSFER);
    put_str(&mut buf, mem);
    put_str(&mut buf, disk);
    put_u64(&mut buf, cutoff.0);
    buf
}

pub(crate) fn read_schema_body(r: &mut Reader<'_>) -> Result<TableSchema> {
    let name = r.str()?;
    let nfam = r.u32()? as usize;
    let mut families = Vec::with_capacity(nfam.min(1024));
    for _ in 0..nfam {
        let fname = r.str()?;
        let locality = match r.u8()? {
            0 => Locality::InMemory,
            1 => Locality::Disk,
            t => return Err(BigtableError::Wal(format!("decode: bad locality tag {t}"))),
        };
        let max_versions = r.u64()? as usize;
        families.push(ColumnFamily {
            name: fname,
            locality,
            max_versions,
        });
    }
    TableSchema::new(name, families)
}

/// Reads the leading schema section of a snapshot payload, leaving the
/// reader positioned at the row section. `Ok(None)` when the payload does
/// not start with a schema tag.
pub(crate) fn read_snapshot_schema(r: &mut Reader<'_>) -> Result<Option<TableSchema>> {
    if r.u8()? != TAG_SCHEMA {
        return Ok(None);
    }
    Ok(Some(read_schema_body(r)?))
}

/// Decodes one record payload.
pub(crate) fn decode_record(payload: &[u8]) -> Result<WalRecord> {
    let mut r = Reader::new(payload);
    let rec = match r.u8()? {
        TAG_SCHEMA => WalRecord::Schema(read_schema_body(&mut r)?),
        TAG_ROWS => {
            let nrows = r.u32()? as usize;
            let mut rows = Vec::with_capacity(nrows.min(4096));
            for _ in 0..nrows {
                let key = RowKey(r.bytes()?.to_vec());
                let nmut = r.u32()? as usize;
                let mut mutations = Vec::with_capacity(nmut.min(4096));
                for _ in 0..nmut {
                    mutations.push(read_mutation(&mut r)?);
                }
                rows.push(RowMutation { key, mutations });
            }
            WalRecord::Rows(rows)
        }
        TAG_AGE_TRANSFER => WalRecord::AgeTransfer {
            mem_family: r.str()?,
            disk_family: r.str()?,
            cutoff: Timestamp(r.u64()?),
        },
        t => return Err(BigtableError::Wal(format!("decode: bad record tag {t}"))),
    };
    if !r.done() {
        return Err(BigtableError::Wal(
            "decode: trailing bytes in record payload".to_string(),
        ));
    }
    Ok(rec)
}

// ---------------------------------------------------------------------------
// Frame parsing.
// ---------------------------------------------------------------------------

const FRAME_HEADER: usize = 16;

/// One parsed frame: its sequence number and payload slice.
pub(crate) struct Frame<'a> {
    pub(crate) seq: u64,
    pub(crate) payload: &'a [u8],
}

/// Walks frames from the start of `bytes`, yielding payloads until the
/// first frame whose length or CRC does not hold. Returns the frames, the
/// byte offset of the consistent cut, and whether anything was cut off.
pub(crate) fn parse_frames(bytes: &[u8]) -> (Vec<Frame<'_>>, usize, bool) {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= FRAME_HEADER {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        let start = pos + FRAME_HEADER;
        let Some(end) = start.checked_add(len) else {
            break;
        };
        if end > bytes.len() {
            break; // torn tail: length header promises more than the file holds
        }
        // The CRC covers the seq bytes and the payload, which sit
        // contiguously in the file.
        if crc32(&bytes[pos + 8..end]) != crc {
            break; // torn or corrupt record: stop at the consistent cut
        }
        let seq = u64::from_le_bytes([
            bytes[pos + 8],
            bytes[pos + 9],
            bytes[pos + 10],
            bytes[pos + 11],
            bytes[pos + 12],
            bytes[pos + 13],
            bytes[pos + 14],
            bytes[pos + 15],
        ]);
        frames.push(Frame {
            seq,
            payload: &bytes[start..end],
        });
        pos = end;
    }
    let torn = pos != bytes.len();
    (frames, pos, torn)
}

fn frame_bytes(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, 0); // CRC patched below, once seq + payload are in place
    put_u64(&mut out, seq);
    out.extend_from_slice(payload);
    let crc = crc32(&out[8..]);
    out[4..8].copy_from_slice(&crc.to_le_bytes());
    out
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

/// Outcome of one append, for metrics and cost accounting.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AppendInfo {
    /// Bytes written to the log (frame header + payload).
    pub(crate) bytes: u64,
    /// Whether this append triggered an fsync.
    pub(crate) fsynced: bool,
}

/// Append handle on one table's log file. Callers serialize access with a
/// mutex; the writer itself only tracks the fsync cadence and the next
/// sequence number.
#[derive(Debug)]
pub(crate) struct WalWriter {
    file: File,
    wal_path: PathBuf,
    fsync_every: u64,
    appends_since_sync: u64,
    next_seq: u64,
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> BigtableError {
    BigtableError::Wal(format!("{what} {}: {e}", path.display()))
}

impl WalWriter {
    /// Creates (truncating) a fresh log at `path`; the first append gets
    /// sequence number `next_seq`.
    pub(crate) fn create(path: PathBuf, fsync_every: u64, next_seq: u64) -> Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err("create wal", &path, e))?;
        Ok(WalWriter {
            file,
            wal_path: path,
            fsync_every,
            appends_since_sync: 0,
            next_seq,
        })
    }

    /// Opens an existing log for appends at `offset` (the consistent cut
    /// found by recovery), truncating anything torn past it. `next_seq`
    /// continues the numbering after the last recovered record.
    pub(crate) fn open_at(
        path: PathBuf,
        fsync_every: u64,
        offset: u64,
        next_seq: u64,
    ) -> Result<Self> {
        let file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| io_err("open wal", &path, e))?;
        file.set_len(offset)
            .map_err(|e| io_err("truncate wal", &path, e))?;
        let mut w = WalWriter {
            file,
            wal_path: path,
            fsync_every,
            appends_since_sync: 0,
            next_seq,
        };
        w.file
            .seek(SeekFrom::Start(offset))
            .map_err(|e| io_err("seek wal", &w.wal_path, e))?;
        Ok(w)
    }

    /// Path of the snapshot that pairs with this log.
    pub(crate) fn snapshot_path(&self) -> PathBuf {
        self.wal_path.with_extension("snap")
    }

    pub(crate) fn fsync_every(&self) -> u64 {
        self.fsync_every
    }

    /// Sequence number of the most recent append (`0` if none yet).
    pub(crate) fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Frames and appends one payload; fsyncs per the configured cadence.
    pub(crate) fn append(&mut self, payload: &[u8]) -> Result<AppendInfo> {
        let frame = frame_bytes(self.next_seq, payload);
        self.next_seq += 1;
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("append wal", &self.wal_path, e))?;
        self.appends_since_sync += 1;
        let fsynced = self.fsync_every > 0 && self.appends_since_sync >= self.fsync_every;
        if fsynced {
            self.file
                .sync_data()
                .map_err(|e| io_err("fsync wal", &self.wal_path, e))?;
            self.appends_since_sync = 0;
        }
        Ok(AppendInfo {
            bytes: frame.len() as u64,
            fsynced,
        })
    }

    /// Writes `payload` as the table snapshot: `<name>.snap.tmp`, fsync,
    /// rename over `<name>.snap`. The snapshot frame's sequence number is
    /// [`Self::last_seq`] — the last log record the snapshot covers, which
    /// recovery uses to skip already-applied frames. Returns bytes written.
    pub(crate) fn write_snapshot(&self, payload: &[u8]) -> Result<u64> {
        let snap = self.snapshot_path();
        let tmp = self.wal_path.with_extension("snap.tmp");
        let frame = frame_bytes(self.last_seq(), payload);
        {
            let mut f = File::create(&tmp).map_err(|e| io_err("create snapshot", &tmp, e))?;
            f.write_all(&frame)
                .map_err(|e| io_err("write snapshot", &tmp, e))?;
            f.sync_data()
                .map_err(|e| io_err("fsync snapshot", &tmp, e))?;
        }
        std::fs::rename(&tmp, &snap).map_err(|e| io_err("publish snapshot", &snap, e))?;
        Ok(frame.len() as u64)
    }

    /// Truncates the log to empty (after a snapshot has been published)
    /// and fsyncs the truncation.
    pub(crate) fn truncate(&mut self) -> Result<()> {
        self.file
            .set_len(0)
            .map_err(|e| io_err("truncate wal", &self.wal_path, e))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| io_err("seek wal", &self.wal_path, e))?;
        self.file
            .sync_data()
            .map_err(|e| io_err("fsync wal", &self.wal_path, e))?;
        self.appends_since_sync = 0;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// File naming + directory scan.
// ---------------------------------------------------------------------------

/// Encodes a table name into a filesystem-safe file stem. Alphanumerics,
/// `_` and `-` pass through; every other byte becomes `%XX`. Reversible,
/// so recovery can list a directory and get the table names back.
pub(crate) fn encode_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for &b in name.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'-' => out.push(b as char),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Inverse of [`encode_name`]. `None` for stems this module never wrote.
pub(crate) fn decode_name(stem: &str) -> Option<String> {
    let bytes = stem.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hi = (hex[0] as char).to_digit(16)?;
                let lo = (hex[1] as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// The log path for `table` under `dir`.
pub(crate) fn wal_path(dir: &Path, table: &str) -> PathBuf {
    dir.join(format!("{}.wal", encode_name(table)))
}

/// Lists the table names that have a `.wal` or `.snap` file under `dir`,
/// sorted for deterministic recovery order.
pub(crate) fn scan_tables(dir: &Path) -> Result<Vec<String>> {
    let mut names = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("read wal dir", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read wal dir", dir, e))?;
        let path = entry.path();
        let ext = path.extension().and_then(|e| e.to_str());
        if !matches!(ext, Some("wal") | Some("snap")) {
            continue;
        }
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        if let Some(name) = decode_name(stem) {
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    names.sort();
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_roundtrip_and_tear_detection() {
        let a = frame_bytes(1, b"alpha");
        let b = frame_bytes(2, b"beta");
        let mut log: Vec<u8> = Vec::new();
        log.extend_from_slice(&a);
        log.extend_from_slice(&b);
        let (frames, cut, torn) = parse_frames(&log);
        assert_eq!(frames.len(), 2);
        assert_eq!((frames[0].seq, frames[0].payload), (1, &b"alpha"[..]));
        assert_eq!((frames[1].seq, frames[1].payload), (2, &b"beta"[..]));
        assert_eq!(cut, log.len());
        assert!(!torn);

        // A corrupted sequence number is caught by the CRC too.
        let mut bad_seq = log.clone();
        bad_seq[a.len() + 8] ^= 0x01;
        let (frames, cut, torn) = parse_frames(&bad_seq);
        assert_eq!(frames.len(), 1);
        assert_eq!(cut, a.len());
        assert!(torn);

        // Chop bytes off the tail: the cut lands after the first record.
        for chop in 1..b.len() {
            let (frames, cut, torn) = parse_frames(&log[..log.len() - chop]);
            assert_eq!(frames.len(), 1, "chop {chop}");
            assert_eq!(cut, a.len());
            assert!(torn);
        }

        // Flip a payload byte in the second record: CRC catches it.
        let mut bad = log.clone();
        let idx = a.len() + FRAME_HEADER;
        bad[idx] ^= 0x40;
        let (frames, cut, torn) = parse_frames(&bad);
        assert_eq!(frames.len(), 1);
        assert_eq!(cut, a.len());
        assert!(torn);
    }

    #[test]
    fn record_payloads_roundtrip() {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnFamily::in_memory("mem", 3),
                ColumnFamily::on_disk("disk", usize::MAX),
            ],
        )
        .unwrap();
        let enc = encode_schema(&schema);
        assert_eq!(decode_record(&enc).unwrap(), WalRecord::Schema(schema));

        let key = RowKey::from_u64(42);
        let muts = vec![
            Mutation::put("mem", "q", Timestamp(7), &b"v"[..]),
            Mutation::delete_column("mem", "q"),
            Mutation::DeleteFamily {
                family: "disk".into(),
            },
            Mutation::DeleteRow,
        ];
        let enc = encode_rows(&[(&key, muts.as_slice())]);
        match decode_record(&enc).unwrap() {
            WalRecord::Rows(rows) => {
                assert_eq!(rows.len(), 1);
                assert_eq!(rows[0].key, key);
                assert_eq!(rows[0].mutations, muts);
            }
            other => panic!("wrong record: {other:?}"),
        }

        let enc = encode_age_transfer("mem", "disk", Timestamp(99));
        assert_eq!(
            decode_record(&enc).unwrap(),
            WalRecord::AgeTransfer {
                mem_family: "mem".into(),
                disk_family: "disk".into(),
                cutoff: Timestamp(99),
            }
        );

        assert!(decode_record(&[0xFF]).is_err());
        let mut trailing = encode_age_transfer("m", "d", Timestamp(1));
        trailing.push(0);
        assert!(decode_record(&trailing).is_err());
    }

    #[test]
    fn name_encoding_roundtrips() {
        for name in ["location", "spatial_index", "UPPER-case_09", "a/b c%d", "…"] {
            let enc = encode_name(name);
            assert!(
                enc.bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'%'),
                "{enc}"
            );
            assert_eq!(decode_name(&enc).as_deref(), Some(name));
        }
    }
}
