//! Tablets: contiguous key-range shards of a table.
//!
//! Real BigTable splits a table into tablets by key range and serves them
//! from different tablet servers; contention and parallelism happen at
//! tablet granularity. We reproduce that: each tablet is an independently
//! locked sorted map, tablets split automatically when they grow past a
//! threshold, and range scans stream tablet by tablet in key order.

use crate::types::{Cell, RowKey, Timestamp};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-row storage: one versions-map per declared column family.
#[derive(Debug, Default, Clone)]
pub(crate) struct RowStorage {
    /// Indexed by family index in the table schema. Each column holds its
    /// versions newest-first.
    pub families: Vec<BTreeMap<String, Vec<Cell>>>,
}

impl RowStorage {
    pub(crate) fn with_families(n: usize) -> Self {
        RowStorage {
            families: vec![BTreeMap::new(); n],
        }
    }

    /// Inserts a cell version, keeping newest-first order and truncating to
    /// `max_versions` (BigTable's per-family GC policy).
    pub(crate) fn put(
        &mut self,
        family_idx: usize,
        qualifier: &str,
        ts: Timestamp,
        value: bytes::Bytes,
        max_versions: usize,
    ) {
        let col = self.families[family_idx]
            .entry(qualifier.to_string())
            .or_default();
        // Common case: strictly newer than the head — push front cheaply.
        let pos = col.partition_point(|c| c.ts > ts);
        if pos < col.len() && col[pos].ts == ts {
            col[pos].value = value; // same-timestamp write replaces
        } else {
            col.insert(pos, Cell { ts, value });
        }
        col.truncate(max_versions);
    }

    /// Removes a whole column. Returns whether it existed.
    pub(crate) fn delete_column(&mut self, family_idx: usize, qualifier: &str) -> bool {
        self.families[family_idx].remove(qualifier).is_some()
    }

    /// Clears a family.
    pub(crate) fn delete_family(&mut self, family_idx: usize) {
        self.families[family_idx].clear();
    }

    /// Whether the row stores no cells at all (eligible for removal).
    pub(crate) fn is_empty(&self) -> bool {
        self.families.iter().all(|f| f.is_empty())
    }

    /// Total stored cells across families (for metrics/size heuristics).
    pub(crate) fn cell_count(&self) -> usize {
        self.families
            .iter()
            .map(|f| f.values().map(Vec::len).sum::<usize>())
            .sum()
    }
}

/// One tablet: an independently locked contiguous shard.
#[derive(Debug)]
pub(crate) struct Tablet {
    pub rows: RwLock<BTreeMap<RowKey, RowStorage>>,
}

impl Tablet {
    fn new() -> Self {
        Tablet {
            rows: RwLock::new(BTreeMap::new()),
        }
    }
}

/// The set of tablets of one table, with their start keys.
///
/// `starts\[0\]` is always `RowKey::MIN`; tablet `i` covers
/// `[starts[i], starts[i+1])`.
pub(crate) struct TabletSet {
    inner: RwLock<Vec<(RowKey, Arc<Tablet>)>>,
    /// A tablet splits once it holds more rows than this.
    pub max_rows_per_tablet: usize,
}

impl TabletSet {
    pub(crate) fn new(max_rows_per_tablet: usize) -> Self {
        TabletSet {
            inner: RwLock::new(vec![(RowKey::MIN, Arc::new(Tablet::new()))]),
            max_rows_per_tablet: max_rows_per_tablet.max(16),
        }
    }

    /// The tablet responsible for `key`.
    pub(crate) fn route(&self, key: &RowKey) -> Arc<Tablet> {
        let tablets = self.inner.read();
        let idx = match tablets.binary_search_by(|(start, _)| start.cmp(key)) {
            Ok(i) => i,
            Err(0) => 0, // cannot happen: starts[0] == MIN <= every key
            Err(i) => i - 1,
        };
        Arc::clone(&tablets[idx].1)
    }

    /// Tablets overlapping `[start, end)` in key order. Start keys are
    /// deliberately not returned — no caller needs them, and cloning a
    /// `RowKey` per tablet on every scan was measurable overhead.
    pub(crate) fn route_range(&self, start: &RowKey, end: Option<&RowKey>) -> Vec<Arc<Tablet>> {
        let tablets = self.inner.read();
        let first = match tablets.binary_search_by(|(s, _)| s.cmp(start)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        tablets[first..]
            .iter()
            .take_while(|(s, _)| match end {
                Some(e) => s < e || s == start,
                None => true,
            })
            .map(|(_, t)| Arc::clone(t))
            .collect()
    }

    /// Number of tablets currently serving the table.
    pub(crate) fn tablet_count(&self) -> usize {
        self.inner.read().len()
    }

    /// Total rows across all tablets (approximate under concurrency).
    pub(crate) fn row_count(&self) -> usize {
        let tablets = self.inner.read();
        tablets.iter().map(|(_, t)| t.rows.read().len()).sum()
    }

    /// Splits any oversized tablet at its median key. Called after writes;
    /// cheap when nothing needs splitting (one read lock + size checks).
    pub(crate) fn maybe_split(&self) {
        // Fast path: check sizes under the read lock.
        let needs_split = {
            let tablets = self.inner.read();
            tablets
                .iter()
                .any(|(_, t)| t.rows.read().len() > self.max_rows_per_tablet)
        };
        if !needs_split {
            return;
        }
        let mut tablets = self.inner.write();
        let mut i = 0;
        while i < tablets.len() {
            let oversized = tablets[i].1.rows.read().len() > self.max_rows_per_tablet;
            if oversized {
                let mut rows = tablets[i].1.rows.write();
                let mid = rows.len() / 2;
                if let Some(split_key) = rows.keys().nth(mid).cloned() {
                    let upper = rows.split_off(&split_key);
                    drop(rows);
                    let new_tablet = Arc::new(Tablet::new());
                    *new_tablet.rows.write() = upper;
                    tablets.insert(i + 1, (split_key, new_tablet));
                }
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn cellv(s: &str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }

    #[test]
    fn row_storage_orders_versions_newest_first() {
        let mut r = RowStorage::with_families(1);
        r.put(0, "q", Timestamp(10), cellv("a"), 10);
        r.put(0, "q", Timestamp(30), cellv("c"), 10);
        r.put(0, "q", Timestamp(20), cellv("b"), 10);
        let versions = &r.families[0]["q"];
        let ts: Vec<u64> = versions.iter().map(|c| c.ts.0).collect();
        assert_eq!(ts, vec![30, 20, 10]);
    }

    #[test]
    fn row_storage_same_ts_replaces() {
        let mut r = RowStorage::with_families(1);
        r.put(0, "q", Timestamp(10), cellv("a"), 10);
        r.put(0, "q", Timestamp(10), cellv("b"), 10);
        let versions = &r.families[0]["q"];
        assert_eq!(versions.len(), 1);
        assert_eq!(&versions[0].value[..], b"b");
    }

    #[test]
    fn row_storage_gc_truncates_old_versions() {
        let mut r = RowStorage::with_families(1);
        for t in 0..10u64 {
            r.put(0, "q", Timestamp(t), cellv("x"), 3);
        }
        let versions = &r.families[0]["q"];
        let ts: Vec<u64> = versions.iter().map(|c| c.ts.0).collect();
        assert_eq!(ts, vec![9, 8, 7]);
        assert_eq!(r.cell_count(), 3);
    }

    #[test]
    fn route_finds_the_covering_tablet() {
        let set = TabletSet::new(16);
        // Fill enough rows to force splits.
        for i in 0..200u64 {
            let t = set.route(&RowKey::from_u64(i));
            t.rows
                .write()
                .insert(RowKey::from_u64(i), RowStorage::with_families(1));
            set.maybe_split();
        }
        assert!(set.tablet_count() > 1, "expected splits");
        assert_eq!(set.row_count(), 200);
        // Every key routes to a tablet that actually holds it.
        for i in 0..200u64 {
            let key = RowKey::from_u64(i);
            let t = set.route(&key);
            assert!(t.rows.read().contains_key(&key), "key {i} misrouted");
        }
    }

    #[test]
    fn route_range_covers_all_overlapping_tablets() {
        let set = TabletSet::new(16);
        for i in 0..300u64 {
            let t = set.route(&RowKey::from_u64(i));
            t.rows
                .write()
                .insert(RowKey::from_u64(i), RowStorage::with_families(1));
            set.maybe_split();
        }
        let start = RowKey::from_u64(50);
        let end = RowKey::from_u64(250);
        let tablets = set.route_range(&start, Some(&end));
        let total: usize = tablets
            .iter()
            .map(|t| t.rows.read().range(start.clone()..end.clone()).count())
            .sum();
        assert_eq!(total, 200);
    }
}
