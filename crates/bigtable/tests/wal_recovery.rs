//! Kill-style crash-recovery tests for the durable store: every
//! acknowledged write must survive a crash (dropping the store without any
//! graceful shutdown) and replay must be idempotent, including the torn
//! final record and the crash-between-snapshot-and-truncate windows.

use moist_bigtable::{
    Bigtable, ColumnFamily, Durability, Mutation, ReadOptions, RowKey, RowMutation, ScanRange,
    StoreConfig, TableSchema, Timestamp,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("moist_wal_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &std::path::Path, fsync_every: u64) -> StoreConfig {
    StoreConfig {
        durability: Durability::Wal {
            dir: dir.to_path_buf(),
            fsync_every,
        },
        ..StoreConfig::default()
    }
}

fn schema() -> TableSchema {
    TableSchema::new(
        "t",
        vec![
            ColumnFamily::in_memory("mem", usize::MAX),
            ColumnFamily::on_disk("disk", usize::MAX),
        ],
    )
    .unwrap()
}

/// Full-state comparison: every row, column and version of every table.
fn full_state(store: &Bigtable, table: &str) -> Vec<moist_bigtable::OwnedRow> {
    store
        .open_table(table)
        .unwrap()
        .scan(
            &ScanRange::all(),
            &ReadOptions {
                families: None,
                latest_only: false,
            },
            None,
        )
        .unwrap()
}

#[test]
fn acknowledged_writes_survive_a_crash_under_8_threads() {
    let dir = test_dir("kill8");
    let store = Bigtable::with_config(durable_config(&dir, 16));
    let table = store.create_table(schema()).unwrap();

    // 8 writer threads race mutate_row / mutate_rows / check_and_mutate
    // against each other; each records a write as "acknowledged" only
    // after the call returned Ok. A shared budget stops everyone at an
    // arbitrary point mid-stream, then the store is dropped with no
    // graceful shutdown — the crash.
    let budget = AtomicI64::new(3_000);
    let acked: Vec<(RowKey, Timestamp, Vec<u8>)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for thread in 0..8u64 {
            let table = Arc::clone(&table);
            let budget = &budget;
            handles.push(scope.spawn(move || {
                let mut acked = Vec::new();
                let mut i = 0u64;
                loop {
                    if budget.fetch_sub(1, Ordering::Relaxed) <= 0 {
                        break;
                    }
                    let ts = Timestamp(i + 1);
                    let val = vec![thread as u8, i as u8];
                    match i % 3 {
                        0 => {
                            let key = RowKey::from_u64(thread * 1_000_000 + i);
                            table
                                .mutate_row(&key, &[Mutation::put("mem", "q", ts, val.clone())])
                                .unwrap();
                            acked.push((key, ts, val));
                        }
                        1 => {
                            let batch: Vec<RowMutation> = (0..4)
                                .map(|j| {
                                    RowMutation::new(
                                        RowKey::from_u64(thread * 1_000_000 + i + j * 100_000),
                                        vec![Mutation::put("mem", "b", ts, val.clone())],
                                    )
                                })
                                .collect();
                            table.mutate_rows(&batch).unwrap();
                            for rm in batch {
                                acked.push((rm.key, ts, val.clone()));
                            }
                        }
                        _ => {
                            // Contended CAS on a shared row: only the
                            // winner's write is acknowledged.
                            let key = RowKey::from_u64(42);
                            let ok = table
                                .check_and_mutate(
                                    &key,
                                    "mem",
                                    &format!("cas{i}"),
                                    None,
                                    &[Mutation::put("mem", format!("cas{i}"), ts, val.clone())],
                                )
                                .unwrap();
                            if ok {
                                acked.push((key, ts, val));
                            }
                        }
                    }
                    i += 1;
                }
                acked
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    assert!(acked.len() > 1_000, "workload too small: {}", acked.len());
    drop(table);
    drop(store); // crash: no compaction, no flush, nothing graceful

    let (recovered, report) = Bigtable::recover(durable_config(&dir, 16)).unwrap();
    assert_eq!(report.tables, 1);
    assert!(report.replayed_records > 0);
    let table = recovered.open_table("t").unwrap();
    for (key, ts, val) in &acked {
        let row = table
            .get_row(
                key,
                &ReadOptions {
                    families: None,
                    latest_only: false,
                },
            )
            .unwrap()
            .unwrap_or_else(|| panic!("acknowledged row {key:?} lost"));
        let found = row.entries.iter().any(|e| {
            e.cells
                .iter()
                .any(|c| c.ts == *ts && c.value.as_ref() == val)
        });
        assert!(found, "acknowledged cell {key:?}@{ts:?} lost");
    }
    assert_eq!(
        recovered.metrics_snapshot().wal_replayed,
        report.replayed_records
    );

    // Idempotent re-replay: recovering the same files again reaches the
    // identical state.
    let state_a = full_state(&recovered, "t");
    drop(table);
    drop(recovered);
    let (again, report2) = Bigtable::recover(durable_config(&dir, 16)).unwrap();
    assert_eq!(report2.replayed_records, report.replayed_records);
    assert_eq!(full_state(&again, "t"), state_a);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_final_record_is_truncated_to_a_consistent_cut() {
    let dir = test_dir("torn");
    let store = Bigtable::with_config(durable_config(&dir, 0));
    let table = store.create_table(schema()).unwrap();
    for i in 0..50u64 {
        table
            .mutate_row(
                &RowKey::from_u64(i),
                &[Mutation::put("mem", "q", Timestamp(i), vec![i as u8])],
            )
            .unwrap();
    }
    drop(table);
    drop(store);

    // Crash mid-append: chop a few bytes off the last record.
    let wal = dir.join("t.wal");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();

    let (recovered, report) = Bigtable::recover(durable_config(&dir, 0)).unwrap();
    assert_eq!(report.truncated_tables, 1);
    let table = recovered.open_table("t").unwrap();
    // Rows 0..49 survive; the torn row 49 is gone — a consistent prefix.
    assert_eq!(table.row_count(), 49);
    assert!(table
        .get_latest(&RowKey::from_u64(48), "mem", "q")
        .unwrap()
        .is_some());
    assert!(table
        .get_latest(&RowKey::from_u64(49), "mem", "q")
        .unwrap()
        .is_none());

    // The log accepts appends again at the cut, and they survive the next
    // recovery with nothing further truncated.
    table
        .mutate_row(
            &RowKey::from_u64(99),
            &[Mutation::put("mem", "q", Timestamp(99), &b"new"[..])],
        )
        .unwrap();
    drop(table);
    drop(recovered);
    let (again, report2) = Bigtable::recover(durable_config(&dir, 0)).unwrap();
    assert_eq!(report2.truncated_tables, 0);
    let table = again.open_table("t").unwrap();
    assert_eq!(table.row_count(), 50);
    assert!(table
        .get_latest(&RowKey::from_u64(99), "mem", "q")
        .unwrap()
        .is_some());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compaction_truncates_the_log_and_recovery_replays_only_the_tail() {
    let dir = test_dir("compact");
    let store = Bigtable::with_config(durable_config(&dir, 8));
    let table = store.create_table(schema()).unwrap();
    for i in 0..100u64 {
        table
            .mutate_row(
                &RowKey::from_u64(i),
                &[Mutation::put("mem", "q", Timestamp(i), vec![i as u8])],
            )
            .unwrap();
    }
    // Age a slice to the disk family so the logical record is in the log,
    // then snapshot.
    table.age_transfer("mem", "disk", Timestamp(10)).unwrap();
    let snap_bytes = store.compact_all().unwrap();
    assert!(snap_bytes > 0);
    assert_eq!(std::fs::metadata(dir.join("t.wal")).unwrap().len(), 0);
    assert!(dir.join("t.snap").exists());

    for i in 100..130u64 {
        table
            .mutate_row(
                &RowKey::from_u64(i),
                &[Mutation::put("mem", "q", Timestamp(i), vec![i as u8])],
            )
            .unwrap();
    }
    let live = full_state(&store, "t");
    drop(table);
    drop(store);

    let (recovered, report) = Bigtable::recover(durable_config(&dir, 8)).unwrap();
    assert_eq!(report.replayed_records, 30, "only the tail replays");
    assert_eq!(full_state(&recovered, "t"), live);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replay_of_records_already_in_the_snapshot_is_idempotent() {
    // Simulates a crash between snapshot publication and log truncation:
    // recovery then replays the *whole* log on top of a snapshot that
    // already contains it.
    let dir = test_dir("resnap");
    let store = Bigtable::with_config(durable_config(&dir, 0));
    let table = store.create_table(schema()).unwrap();
    for i in 0..40u64 {
        table
            .mutate_row(
                &RowKey::from_u64(i % 10),
                &[Mutation::put("mem", "q", Timestamp(i), vec![i as u8])],
            )
            .unwrap();
    }
    table
        .mutate_row(&RowKey::from_u64(3), &[Mutation::DeleteRow])
        .unwrap();
    table.age_transfer("mem", "disk", Timestamp(20)).unwrap();

    let pre_compact_log = std::fs::read(dir.join("t.wal")).unwrap();
    let live = full_state(&store, "t");
    store.compact_all().unwrap();
    drop(table);
    drop(store);
    // Undo the truncation: snapshot + full log, as the crash would leave.
    std::fs::write(dir.join("t.wal"), &pre_compact_log).unwrap();

    let (recovered, report) = Bigtable::recover(durable_config(&dir, 0)).unwrap();
    // Every surviving log record is covered by the snapshot's sequence
    // number, so nothing replays — and nothing applies twice.
    assert_eq!(report.replayed_records, 0);
    assert_eq!(full_state(&recovered, "t"), live);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn dropped_tables_do_not_resurrect_and_creation_stubs_are_skipped() {
    let dir = test_dir("drop");
    let store = Bigtable::with_config(durable_config(&dir, 0));
    store.create_table(schema()).unwrap();
    let other = TableSchema::new("gone", vec![ColumnFamily::in_memory("f", 1)]).unwrap();
    store.create_table(other).unwrap();
    store.drop_table("gone").unwrap();
    drop(store);
    // A zero-length stub: a table whose creation crashed before the
    // schema record hit the log.
    std::fs::write(dir.join("stub.wal"), b"").unwrap();

    let (recovered, report) = Bigtable::recover(durable_config(&dir, 0)).unwrap();
    assert_eq!(recovered.table_names(), vec!["t"]);
    assert_eq!(report.tables, 1);
    assert_eq!(report.skipped_tables, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn durability_charges_cost_and_counts_wal_metrics() {
    let dir = test_dir("cost");
    let mem_store = Bigtable::new();
    let wal_store = Bigtable::with_config(durable_config(&dir, 8));
    let mut cheap = mem_store.session();
    let mut durable = wal_store.session();
    mem_store.create_table(schema()).unwrap();
    wal_store.create_table(schema()).unwrap();
    let mem_t = mem_store.open_table("t").unwrap();
    let wal_t = wal_store.open_table("t").unwrap();
    for i in 0..64u64 {
        let muts = [Mutation::put("mem", "q", Timestamp(i), vec![i as u8])];
        cheap
            .mutate_row(&mem_t, &RowKey::from_u64(i), &muts)
            .unwrap();
        durable
            .mutate_row(&wal_t, &RowKey::from_u64(i), &muts)
            .unwrap();
    }
    assert!(
        durable.elapsed_us() > cheap.elapsed_us(),
        "durable writes must cost more: {} vs {}",
        durable.elapsed_us(),
        cheap.elapsed_us()
    );
    let snap = wal_store.metrics_snapshot();
    // 64 row records hit the table metrics (the schema record is written
    // by the store before the table exists); the writer fsyncs every 8
    // appends counting the schema record, so 8 of the row appends sync.
    assert_eq!(snap.wal_appends, 64);
    assert_eq!(snap.wal_fsyncs, 8);
    assert!(snap.wal_bytes > 0);
    let mem_snap = mem_store.metrics_snapshot();
    assert_eq!(mem_snap.wal_appends, 0);
    assert_eq!(mem_snap.wal_bytes, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}
