//! Model-based property test: the store must behave exactly like a simple
//! in-memory reference model under arbitrary interleavings of puts, deletes
//! and scans.

use moist_bigtable::{
    Bigtable, ColumnFamily, Mutation, ReadOptions, RowKey, ScanRange, TableSchema, Timestamp,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Put {
        key: u64,
        qual: u8,
        ts: u64,
        val: u8,
    },
    DeleteColumn {
        key: u64,
        qual: u8,
    },
    DeleteRow {
        key: u64,
    },
    Get {
        key: u64,
    },
    Scan {
        start: u64,
        len: u64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..64, 0u8..4, 0u64..100, any::<u8>())
            .prop_map(|(key, qual, ts, val)| Op::Put { key, qual, ts, val }),
        1 => (0u64..64, 0u8..4).prop_map(|(key, qual)| Op::DeleteColumn { key, qual }),
        1 => (0u64..64).prop_map(|key| Op::DeleteRow { key }),
        2 => (0u64..64).prop_map(|key| Op::Get { key }),
        2 => (0u64..64, 0u64..32).prop_map(|(start, len)| Op::Scan { start, len }),
    ]
}

/// Reference model: key -> qualifier -> (latest_ts, latest_val).
/// max_versions = 1 in this test so "latest wins" is the whole contract.
type Model = BTreeMap<u64, BTreeMap<u8, (u64, u8)>>;

fn model_put(model: &mut Model, key: u64, qual: u8, ts: u64, val: u8) {
    let col = model.entry(key).or_default();
    match col.get(&qual) {
        Some(&(old_ts, _)) if old_ts > ts => {} // older write is ignored at max_versions=1
        _ => {
            col.insert(qual, (ts, val));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn store_matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let store = Bigtable::new();
        let table = store
            .create_table(
                TableSchema::new("t", vec![ColumnFamily::in_memory("f", 1)]).unwrap(),
            )
            .unwrap();
        let mut model: Model = BTreeMap::new();

        for op in ops {
            match op {
                Op::Put { key, qual, ts, val } => {
                    table
                        .mutate_row(
                            &RowKey::from_u64(key),
                            &[Mutation::put("f", qual.to_string(), Timestamp(ts), vec![val])],
                        )
                        .unwrap();
                    model_put(&mut model, key, qual, ts, val);
                }
                Op::DeleteColumn { key, qual } => {
                    table
                        .mutate_row(
                            &RowKey::from_u64(key),
                            &[Mutation::delete_column("f", qual.to_string())],
                        )
                        .unwrap();
                    if let Some(cols) = model.get_mut(&key) {
                        cols.remove(&qual);
                        if cols.is_empty() {
                            model.remove(&key);
                        }
                    }
                }
                Op::DeleteRow { key } => {
                    table
                        .mutate_row(&RowKey::from_u64(key), &[Mutation::DeleteRow])
                        .unwrap();
                    model.remove(&key);
                }
                Op::Get { key } => {
                    let got = table
                        .get_row(&RowKey::from_u64(key), &ReadOptions::latest())
                        .unwrap();
                    match model.get(&key) {
                        None => prop_assert!(got.is_none(), "row {key} should be absent"),
                        Some(cols) => {
                            let row = got.expect("row should exist");
                            prop_assert_eq!(row.entries.len(), cols.len());
                            for (qual, &(ts, val)) in cols {
                                let cell = row
                                    .latest("f", &qual.to_string())
                                    .expect("column should exist");
                                prop_assert_eq!(cell.ts, Timestamp(ts));
                                prop_assert_eq!(cell.value.as_ref(), &[val]);
                            }
                        }
                    }
                }
                Op::Scan { start, len } => {
                    let rows = table
                        .scan(
                            &ScanRange::between(
                                RowKey::from_u64(start),
                                RowKey::from_u64(start + len),
                            ),
                            &ReadOptions::latest(),
                            None,
                        )
                        .unwrap();
                    let expected: Vec<u64> =
                        model.range(start..start + len).map(|(k, _)| *k).collect();
                    let got: Vec<u64> =
                        rows.iter().map(|r| r.key.as_u64().unwrap()).collect();
                    prop_assert_eq!(got, expected);
                }
            }
            // Row-count estimate stays consistent with the model.
            prop_assert_eq!(table.approx_row_count() as usize, model.len());
        }
        prop_assert_eq!(table.row_count(), model.len());
    }
}
