//! Property tests for WAL replay: any mutation sequence, recovered from
//! the full log or from a snapshot plus log tail, reaches a state
//! identical to a plain in-memory store that applied the same sequence —
//! and replaying twice is a fixed point.

use moist_bigtable::{
    Bigtable, ColumnFamily, Durability, Mutation, OwnedRow, ReadOptions, RowKey, ScanRange,
    StoreConfig, TableSchema, Timestamp,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// One logical write operation, applied identically to the durable store
/// and the in-memory reference.
#[derive(Debug, Clone)]
enum Op {
    Put {
        key: u64,
        qual: u8,
        ts: u64,
        val: u8,
    },
    DeleteColumn {
        key: u64,
        qual: u8,
    },
    DeleteRow {
        key: u64,
    },
    AgeTransfer {
        cutoff: u64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0u64..16, 0u8..4, 0u64..32, any::<u8>())
            .prop_map(|(key, qual, ts, val)| Op::Put { key, qual, ts, val }),
        2 => (0u64..16, 0u8..4).prop_map(|(key, qual)| Op::DeleteColumn { key, qual }),
        1 => (0u64..16).prop_map(|key| Op::DeleteRow { key }),
        1 => (0u64..32).prop_map(|cutoff| Op::AgeTransfer { cutoff }),
    ]
}

fn schema() -> TableSchema {
    TableSchema::new(
        "t",
        vec![
            ColumnFamily::in_memory("mem", 4),
            ColumnFamily::on_disk("disk", usize::MAX),
        ],
    )
    .unwrap()
}

fn fresh_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "moist_wal_props_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &Path) -> StoreConfig {
    StoreConfig {
        durability: Durability::Wal {
            dir: dir.to_path_buf(),
            fsync_every: 0,
        },
        ..StoreConfig::default()
    }
}

fn apply(table: &moist_bigtable::Table, op: &Op) {
    match op {
        Op::Put { key, qual, ts, val } => table
            .mutate_row(
                &RowKey::from_u64(*key),
                &[Mutation::put(
                    "mem",
                    format!("q{qual}"),
                    Timestamp(*ts),
                    vec![*val],
                )],
            )
            .unwrap(),
        Op::DeleteColumn { key, qual } => table
            .mutate_row(
                &RowKey::from_u64(*key),
                &[Mutation::delete_column("mem", format!("q{qual}"))],
            )
            .unwrap(),
        Op::DeleteRow { key } => table
            .mutate_row(&RowKey::from_u64(*key), &[Mutation::DeleteRow])
            .unwrap(),
        Op::AgeTransfer { cutoff } => {
            table
                .age_transfer("mem", "disk", Timestamp(*cutoff))
                .unwrap();
        }
    }
}

fn full_state(store: &Bigtable) -> Vec<OwnedRow> {
    store
        .open_table("t")
        .unwrap()
        .scan(
            &ScanRange::all(),
            &ReadOptions {
                families: None,
                latest_only: false,
            },
            None,
        )
        .unwrap()
}

/// Runs `ops` on a fresh in-memory store: the reference state.
fn reference_state(ops: &[Op]) -> Vec<OwnedRow> {
    let store = Bigtable::new();
    let table = store.create_table(schema()).unwrap();
    for op in ops {
        apply(&table, op);
    }
    full_state(&store)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full-log replay (no snapshot) matches the reference, and a second
    /// recovery of the same files is a fixed point.
    #[test]
    fn full_log_replay_matches_reference(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let dir = fresh_dir();
        let store = Bigtable::with_config(durable_config(&dir));
        let table = store.create_table(schema()).unwrap();
        for op in &ops {
            apply(&table, op);
        }
        drop(table);
        drop(store);

        let (rec, _) = Bigtable::recover(durable_config(&dir)).unwrap();
        let state = full_state(&rec);
        prop_assert_eq!(&state, &reference_state(&ops));
        drop(rec);

        let (rec2, _) = Bigtable::recover(durable_config(&dir)).unwrap();
        prop_assert_eq!(full_state(&rec2), state);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Snapshot at an arbitrary prefix, then the tail: recovery replays
    /// snapshot + tail and still matches the reference. Also covers the
    /// crash-before-truncate window by restoring the full pre-compaction
    /// log next to the snapshot (records replayed on top of a snapshot
    /// that already contains them must be no-ops).
    #[test]
    fn snapshot_plus_tail_matches_reference(
        ops in prop::collection::vec(op_strategy(), 2..120),
        split_seed in 0usize..1000,
    ) {
        let split = split_seed % ops.len();
        let dir = fresh_dir();
        let store = Bigtable::with_config(durable_config(&dir));
        let table = store.create_table(schema()).unwrap();
        for op in &ops[..split] {
            apply(&table, op);
        }
        let pre_compact_log = std::fs::read(dir.join("t.wal")).unwrap();
        store.compact_all().unwrap();
        for op in &ops[split..] {
            apply(&table, op);
        }
        let tail_log = std::fs::read(dir.join("t.wal")).unwrap();
        drop(table);
        drop(store);

        let (rec, _) = Bigtable::recover(durable_config(&dir)).unwrap();
        prop_assert_eq!(full_state(&rec), reference_state(&ops));
        drop(rec);

        // Crash-before-truncate: snapshot of ops[..split] plus a log that
        // still holds all of ops[..split] followed by the tail.
        let mut full_log = pre_compact_log;
        // tail_log starts where truncate() left it: offset 0.
        full_log.extend_from_slice(&tail_log);
        std::fs::write(dir.join("t.wal"), &full_log).unwrap();
        let (rec, _) = Bigtable::recover(durable_config(&dir)).unwrap();
        prop_assert_eq!(full_state(&rec), reference_state(&ops));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Tearing 1..8 bytes off the final record loses exactly that record:
    /// the recovered state equals the reference over all but the last op.
    #[test]
    fn torn_tail_recovers_the_prefix(
        ops in prop::collection::vec(op_strategy(), 1..60),
        chop in 1usize..8,
    ) {
        let dir = fresh_dir();
        let store = Bigtable::with_config(durable_config(&dir));
        let table = store.create_table(schema()).unwrap();
        for op in &ops {
            apply(&table, op);
        }
        drop(table);
        drop(store);

        let wal = dir.join("t.wal");
        let bytes = std::fs::read(&wal).unwrap();
        // Every frame is at least 8 bytes of header plus a tagged payload,
        // so chopping < 8 bytes can only tear the final record.
        std::fs::write(&wal, &bytes[..bytes.len() - chop]).unwrap();

        let (rec, report) = Bigtable::recover(durable_config(&dir)).unwrap();
        prop_assert_eq!(report.truncated_tables, 1);
        prop_assert_eq!(full_state(&rec), reference_state(&ops[..ops.len() - 1]));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
