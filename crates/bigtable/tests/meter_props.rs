//! Property tests for per-call cost-meter folding: any interleaving of
//! query/update meters folds into the shared [`MeterHub`] to the same
//! `elapsed_us` / op totals — and hubbed sessions to the same
//! [`MetricsSnapshot`] — as the old serialized single-clock accounting.
//!
//! The per-charge tests use *dyadic* charges (multiples of 2⁻¹⁰ with
//! bounded magnitude) so every partial `f64` sum is exact and the
//! equality can be bitwise, not approximate. The session-level test uses
//! the real cost profile but compares against a serialized oracle that
//! applies the same ops in the same global order, which the hub's
//! per-op mirroring reproduces exactly.

use moist_bigtable::{
    Bigtable, CostMeter, MeterHub, Mutation, ReadOptions, RowKey, ScanRange, SimClock, Timestamp,
};
use proptest::prelude::*;

/// Dyadic charge in [0, 64): k·2⁻¹⁰, exact under f64 addition.
fn dyadic() -> impl Strategy<Value = f64> {
    (0u32..1 << 16).prop_map(|k| k as f64 / 1024.0)
}

/// Deterministic xorshift over `seed` for picking interleavings.
fn next(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[derive(Debug, Clone)]
enum Op {
    Put { key: u64, val: u8 },
    Get { key: u64 },
    Scan { limit: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..32, any::<u8>()).prop_map(|(key, val)| Op::Put { key, val }),
        3 => (0u64..32).prop_map(|key| Op::Get { key }),
        1 => (1u8..8).prop_map(|limit| Op::Scan { limit }),
    ]
}

fn apply(s: &mut moist_bigtable::Session, t: &moist_bigtable::Table, op: &Op) {
    match op {
        Op::Put { key, val } => s
            .mutate_row(
                t,
                &RowKey::from_u64(*key),
                &[Mutation::put("mem", "q", Timestamp(0), &[*val][..])],
            )
            .unwrap(),
        Op::Get { key } => {
            s.get_latest(t, &RowKey::from_u64(*key), "mem", "q")
                .unwrap();
        }
        Op::Scan { limit } => {
            s.scan(
                t,
                &ScanRange::all(),
                &ReadOptions::latest_in("mem"),
                Some(*limit as usize),
            )
            .unwrap();
        }
    }
}

fn store_with_table() -> (
    std::sync::Arc<Bigtable>,
    std::sync::Arc<moist_bigtable::Table>,
) {
    let store = Bigtable::new();
    let t = store
        .create_table(
            moist_bigtable::TableSchema::new(
                "t",
                vec![moist_bigtable::ColumnFamily::in_memory("mem", 4)],
            )
            .unwrap(),
        )
        .unwrap();
    (store, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Per-op mirroring (what hubbed sessions do): charges from many
    /// calls, interleaved in an arbitrary order, land on the hub with
    /// the exact totals of one serialized clock — bitwise.
    #[test]
    fn per_op_folding_is_lossless(
        calls in prop::collection::vec(prop::collection::vec(dyadic(), 1..12), 1..12),
        seed in any::<u64>(),
    ) {
        // Serialized oracle: one shared clock, call order.
        let mut clock = SimClock::new();
        let mut ops = 0u64;
        for call in &calls {
            for &c in call {
                clock.charge_us(c);
                ops += 1;
            }
        }

        // Interleaved run: each call owns a CostMeter; every charge is
        // mirrored into the hub at an arbitrary point in the schedule.
        let hub = MeterHub::new();
        let mut meters: Vec<CostMeter> = calls.iter().map(|_| CostMeter::new()).collect();
        let mut cursors = vec![0usize; calls.len()];
        let mut remaining: usize = calls.iter().map(|c| c.len()).sum();
        let mut state = seed | 1;
        while remaining > 0 {
            let mut pick = (next(&mut state) as usize) % calls.len();
            while cursors[pick] >= calls[pick].len() {
                pick = (pick + 1) % calls.len();
            }
            let c = calls[pick][cursors[pick]];
            meters[pick].charge_us(c);
            hub.charge_us(c);
            hub.note_op();
            cursors[pick] += 1;
            remaining -= 1;
        }
        prop_assert_eq!(hub.elapsed_us().to_bits(), clock.now_us().to_bits());
        prop_assert_eq!(hub.op_count(), ops);
        // And each per-call meter holds exactly its own call's charges.
        for (meter, call) in meters.iter().zip(&calls) {
            let mut own = SimClock::new();
            for &c in call {
                own.charge_us(c);
            }
            prop_assert_eq!(meter.elapsed_us().to_bits(), own.now_us().to_bits());
        }
    }

    /// Coarse end-of-call folding ([`MeterHub::fold`]): any permutation
    /// of completed meters folds to the serialized totals.
    #[test]
    fn whole_meter_folds_commute(
        calls in prop::collection::vec(prop::collection::vec(dyadic(), 1..12), 1..10),
        seed in any::<u64>(),
    ) {
        let mut clock = SimClock::new();
        let mut ops = 0u64;
        let mut meters = Vec::new();
        for call in &calls {
            let mut m = CostMeter::new();
            for &c in call {
                clock.charge_us(c);
                m.charge_us(c);
                m.note_op();
                ops += 1;
            }
            meters.push(m);
        }
        // Fisher–Yates on the fold order.
        let mut order: Vec<usize> = (0..meters.len()).collect();
        let mut state = seed | 1;
        for i in (1..order.len()).rev() {
            let j = (next(&mut state) as usize) % (i + 1);
            order.swap(i, j);
        }
        let hub = MeterHub::new();
        for &i in &order {
            hub.fold(&meters[i]);
        }
        prop_assert_eq!(hub.elapsed_us().to_bits(), clock.now_us().to_bits());
        prop_assert_eq!(hub.op_count(), ops);
    }

    /// Hubbed sessions: two sessions sharing one hub, fed an arbitrary
    /// interleaving of store ops, reach the same `MetricsSnapshot` and
    /// the same hub `elapsed_us` bits as one serialized session applying
    /// the identical global op order.
    #[test]
    fn hubbed_sessions_match_serialized_metrics(
        schedule in prop::collection::vec((any::<bool>(), op_strategy()), 1..60),
    ) {
        use std::sync::Arc;
        // Interleaved: two hub-attached sessions over one store.
        let (store_a, table_a) = store_with_table();
        let hub_a = Arc::new(MeterHub::new());
        let mut s1 = store_a.session_with_hub(store_a.config().cost_profile, Arc::clone(&hub_a));
        let mut s2 = store_a.session_with_hub(store_a.config().cost_profile, Arc::clone(&hub_a));
        for (first, op) in &schedule {
            let s = if *first { &mut s1 } else { &mut s2 };
            apply(s, &table_a, op);
        }

        // Serialized oracle: one session, same global order.
        let (store_b, table_b) = store_with_table();
        let hub_b = Arc::new(MeterHub::new());
        let mut solo = store_b.session_with_hub(store_b.config().cost_profile, Arc::clone(&hub_b));
        for (_, op) in &schedule {
            apply(&mut solo, &table_b, op);
        }

        prop_assert_eq!(store_a.metrics_snapshot(), store_b.metrics_snapshot());
        prop_assert_eq!(hub_a.elapsed_us().to_bits(), hub_b.elapsed_us().to_bits());
        prop_assert_eq!(hub_a.op_count(), hub_b.op_count());
    }
}
